"""E8 -- Example 1.4.6: the literal insertion set Inset."""

import pytest

from benchmarks.conftest import run_report
from repro.bench.experiments import e08_inset_example
from repro.db.literal_base import inset
from repro.logic.propositions import Vocabulary


@pytest.mark.parametrize(
    "text,expected_size",
    [("A1 | A2", 3), ("A1 | ~A1", 1), ("A1 & A2", 1)],
    ids=["disjunction", "tautology", "conjunction"],
)
def test_inset_computation(benchmark, text, expected_size):
    vocabulary = Vocabulary.standard(3)
    result = benchmark(inset, vocabulary, [text])
    assert len(result) == expected_size


@pytest.mark.parametrize("letters", [4, 8, 12])
def test_inset_scaling_with_dependency_width(benchmark, letters):
    """Inset of an n-letter disjunction has 2^n - 1 members: the update
    interpretation itself is exponential in the payload's width."""
    vocabulary = Vocabulary.standard(letters)
    text = " | ".join(vocabulary.names)
    result = benchmark(inset, vocabulary, [text])
    assert len(result) == 2 ** letters - 1


def test_e08_shape(benchmark):
    run_report(benchmark, e08_inset_example)
