"""Ablation A2: masking strategies.

Section 4: "we might demand that all sets of clauses be fully expanded to
include all consequences.  Masking then becomes trivial.  Of course,
other operations then become intolerably slow."  Compared here:

* **resolve-then-drop** (the paper's Algorithm 2.3.5): work proportional
  to the letters actually masked;
* **expand-then-drop** (:func:`mask_via_implicates`): full prime-implicate
  saturation first, trivial drop after.

Also ablated: the letter *elimination order* inside resolve-then-drop
(given order vs fewest-occurrences-first), a classical Davis-Putnam
heuristic the paper leaves open.
"""

import random

import pytest

from repro.blu.clausal_mask import clausal_mask
from repro.logic.clauses import ClauseSet
from repro.logic.implicates import mask_via_implicates
from repro.logic.propositions import Vocabulary
from repro.logic.resolution import eliminate_letter
from repro.logic.semantics import models_of_clauses
from repro.workloads.generators import random_clause_set

VOCAB = Vocabulary.standard(12)


def make_state(clauses: int) -> ClauseSet:
    rng = random.Random(23)
    return random_clause_set(rng, VOCAB, clauses, width=3)


def mask_fewest_occurrences_first(state: ClauseSet, indices) -> ClauseSet:
    """Resolve-then-drop, eliminating the rarest letter first."""
    remaining = set(indices)
    current = state
    while remaining:

        def occurrence_count(index: int) -> int:
            return sum(
                1
                for clause in current.clauses
                if index + 1 in clause or -(index + 1) in clause
            )

        best = min(remaining, key=occurrence_count)
        remaining.discard(best)
        current = eliminate_letter(current, best)
    return current


MASK_INDICES = [0, 1, 2]


@pytest.mark.parametrize("clauses", [20, 40])
def test_resolve_then_drop(benchmark, clauses):
    state = make_state(clauses)
    result = benchmark(clausal_mask, state, MASK_INDICES, True)
    assert not (result.prop_indices & set(MASK_INDICES))


@pytest.mark.parametrize("clauses", [8, 12])
def test_expand_then_drop(benchmark, clauses):
    # Note the far smaller states than the resolve-then-drop runs: full
    # prime-implicate expansion exhausts a 100k-clause budget already at
    # ~20 random width-3 clauses over 12 letters -- the Section 4 point
    # that making masking trivial makes everything else intolerable.
    state = make_state(clauses)
    result = benchmark(mask_via_implicates, state, MASK_INDICES, 500_000)
    assert models_of_clauses(result) == models_of_clauses(
        clausal_mask(state, MASK_INDICES)
    )


def test_expansion_budget_exhausts_on_moderate_states(benchmark):
    """The blow-up itself, pinned: 40 random clauses over 12 letters
    exceed a 100k-clause prime-implicate budget."""

    def blows_up() -> bool:
        try:
            mask_via_implicates(make_state(40), MASK_INDICES, 100_000)
        except MemoryError:
            return True
        return False

    assert benchmark.pedantic(blows_up, rounds=1, iterations=1)


@pytest.mark.parametrize("clauses", [20, 40])
def test_fewest_occurrences_first_order(benchmark, clauses):
    state = make_state(clauses)
    result = benchmark(mask_fewest_occurrences_first, state, MASK_INDICES)
    assert models_of_clauses(result) == models_of_clauses(
        clausal_mask(state, MASK_INDICES)
    )


def test_strategies_agree_semantically(benchmark):
    def check():
        state = make_state(12)
        a = clausal_mask(state, MASK_INDICES)
        b = mask_via_implicates(state, MASK_INDICES, 500_000)
        c = mask_fewest_occurrences_first(state, MASK_INDICES)
        return (
            models_of_clauses(a) == models_of_clauses(b) == models_of_clauses(c)
        )

    assert benchmark.pedantic(check, rounds=1, iterations=1)
