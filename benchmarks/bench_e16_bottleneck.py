"""E16 -- Section 4: mask on the system state dominates the HLU pipeline."""

import random

import pytest

from benchmarks.conftest import run_report
from repro.bench.experiments import e16_hlu_bottleneck
from repro.blu.clausal_impl import ClausalImplementation
from repro.blu.clausal_mask import clausal_mask
from repro.logic.clauses import ClauseSet
from repro.logic.propositions import Vocabulary
from repro.workloads.generators import clause_set_of_length

VOCAB = Vocabulary.standard(24)
IMPL = ClausalImplementation(VOCAB)
PAYLOAD = ClauseSet.from_strs(VOCAB, ["A1 | A2"])


def make_state(length):
    rng = random.Random(41)
    return clause_set_of_length(rng, VOCAB, length, width=3)


@pytest.mark.parametrize("length", [300, 1200])
def test_genmask_on_payload_is_state_independent(benchmark, length):
    # genmask never sees the state: its cost is constant across state sizes.
    make_state(length)  # built but irrelevant, by design
    result = benchmark(IMPL.op_genmask, PAYLOAD)
    assert result == frozenset({0, 1})


@pytest.mark.parametrize("length", [300, 1200])
def test_mask_on_state_scales_with_state(benchmark, length):
    state = make_state(length)
    result = benchmark(clausal_mask, state, [0, 1], True)
    assert not (result.prop_indices & {0, 1})


@pytest.mark.parametrize("length", [300, 1200])
def test_full_insert_pipeline(benchmark, length):
    from repro.hlu.programs import HLU_INSERT

    state = make_state(length)
    result = benchmark(IMPL.run, HLU_INSERT, state, PAYLOAD)
    assert frozenset({1, 2}) in result.clauses or result.has_empty_clause is False


def test_e16_shape(benchmark):
    run_report(benchmark, e16_hlu_bottleneck)
