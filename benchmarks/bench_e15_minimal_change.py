"""E15 -- Section 3.3.2: minimal change vs mask-assert."""

import pytest

from benchmarks.conftest import run_report
from repro.baselines.minimal_change import MinimalChangeDatabase
from repro.bench.experiments import e15_minimal_change
from repro.hlu.session import IncompleteDatabase
from repro.logic.propositions import Vocabulary

VOCAB = Vocabulary.standard(3)


@pytest.mark.parametrize("sentences", [2, 6, 10])
def test_minimal_change_insert_cost_grows_with_theory(benchmark, sentences):
    """The flock approach enumerates subsets of the theory: insertion cost
    is exponential in the theory size (vs Hegner's cost in the state
    representation)."""
    theory = [f"A1 | A{1 + (i % 2)}" for i in range(sentences)]

    def run():
        db = MinimalChangeDatabase(VOCAB, theory)
        db.insert("~A1 & ~A2")
        return db

    db = benchmark(run)
    assert db.is_certain("~A1")


def test_hegner_insert_reference_cost(benchmark):
    def run():
        db = IncompleteDatabase.over(3)
        db.assert_("A1 | A2").insert("~A1 & ~A2")
        return db

    db = benchmark(run)
    assert db.is_certain("~A1")


def test_e15_shape(benchmark):
    run_report(benchmark, e15_minimal_change)
