"""Smoke tests: every example script runs to completion and prints the
key facts it narrates.  Keeps `examples/` from drifting as the API moves.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

EXPECTED_FRAGMENTS = {
    "quickstart.py": [
        "{A1 | A2, A3 | A4, A4 | A5}",            # Example 3.1.5 result
        "clausal and instance backends agree: True",
    ],
    "telephone_directory.py": [
        "bindings found (Jones' departments): [{'y': 'D1'}]",
        "*some* number certain? True",
        "Smith's record untouched? True",
    ],
    "fault_diagnosis.py": [
        "diagnosis: host-1-local fault certain? True",
        "still consistent? True",
    ],
    "update_strategies.py": [
        "scenario 2",
        "Remark 1.4.7",
    ],
    "blu_playground.py": [
        "emulation holds on this run: True",
        "rejected: (lambda (s0) (mask s0 s0))",
    ],
    "null_reasoning.py": [
        "Ada a suspect, certainly? True",
        "'both rooms or neither' representable as a table? False",
    ],
}


@pytest.mark.parametrize("script", sorted(EXPECTED_FRAGMENTS), ids=str)
def test_example_runs_and_prints_expected_output(script):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"missing example {script}"
    completed = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    for fragment in EXPECTED_FRAGMENTS[script]:
        assert fragment in completed.stdout, (script, fragment)


def test_every_example_file_is_covered():
    scripts = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(EXPECTED_FRAGMENTS)
