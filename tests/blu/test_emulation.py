"""Tests that BLU--C emulates BLU--I (Theorems 2.3.4(a), 2.3.6(a), 2.3.9(a)).

This is experiment E10's verification core: the canonical emulation
``e_CI`` must commute with every operator and hence with arbitrary terms.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.blu.clausal_impl import ClausalImplementation
from repro.blu.emulation import canonical_emulation
from repro.blu.instance_impl import InstanceImplementation
from repro.blu.parser import parse_term
from repro.blu.syntax import Apply, Sort, Term, Variable
from repro.logic.clauses import ClauseSet, clause_of, make_literal
from repro.logic.propositions import Vocabulary

VOCAB = Vocabulary.standard(4)
N = len(VOCAB)
CLAUSAL = ClausalImplementation(VOCAB)
INSTANCE = InstanceImplementation(VOCAB)
EMU = canonical_emulation(CLAUSAL, INSTANCE)


def random_clause_set(rng: random.Random) -> ClauseSet:
    clauses = []
    for _ in range(rng.randint(0, 4)):
        size = rng.randint(1, 3)
        letters = rng.sample(range(N), size)
        clauses.append(clause_of(make_literal(i, rng.random() < 0.5) for i in letters))
    return ClauseSet(VOCAB, clauses)


class TestOperatorEmulation:
    def test_assert(self):
        rng = random.Random(1)
        for _ in range(30):
            assert EMU.check_operator(
                "assert", random_clause_set(rng), random_clause_set(rng)
            )

    def test_combine(self):
        rng = random.Random(2)
        for _ in range(30):
            assert EMU.check_operator(
                "combine", random_clause_set(rng), random_clause_set(rng)
            )

    def test_complement(self):
        rng = random.Random(3)
        for _ in range(30):
            assert EMU.check_operator("complement", random_clause_set(rng))

    def test_mask(self):
        rng = random.Random(4)
        for _ in range(30):
            indices = frozenset(rng.sample(range(N), rng.randint(0, N)))
            assert EMU.check_operator("mask", random_clause_set(rng), indices)

    def test_genmask(self):
        rng = random.Random(5)
        for _ in range(30):
            assert EMU.check_operator("genmask", random_clause_set(rng))

    def test_without_simplification_too(self):
        raw = ClausalImplementation(VOCAB, simplify=False)
        emu = canonical_emulation(raw, INSTANCE)
        rng = random.Random(6)
        for _ in range(15):
            assert emu.check_operator(
                "combine", random_clause_set(rng), random_clause_set(rng)
            )
            assert emu.check_operator("complement", random_clause_set(rng))


class TestTermEmulation:
    TERMS = [
        "(assert (mask s0 (genmask s1)) s1)",                       # HLU-insert
        "(assert (mask s0 (genmask s1)) (complement s1))",          # HLU-delete
        "(combine (assert s0 s1) (assert s0 (complement s1)))",     # where-split
        "(mask (complement (combine s0 s1)) (genmask s1))",
        "(assert (complement (complement s0)) s0)",
    ]

    @pytest.mark.parametrize("text", TERMS)
    def test_fixed_terms(self, text):
        rng = random.Random(hash(text) & 0xFFFF)
        term = parse_term(text)
        for _ in range(10):
            env = {name: random_clause_set(rng) for name in term.variables()}
            assert EMU.check_term(term, env)

    def test_surjectivity_witness(self):
        # e_CI[S] is surjective: every world set has a clause-set preimage.
        from repro.db.instances import WorldSet

        rng = random.Random(7)
        for _ in range(10):
            worlds = frozenset(
                rng.sample(range(1 << N), rng.randint(0, 1 << N))
            )
            ws = WorldSet(VOCAB, worlds)
            assert WorldSet.from_clause_set(ws.to_clause_set()) == ws


# --- hypothesis: random terms ------------------------------------------------

state_variables = st.sampled_from(["s0", "s1", "s2"])


def term_strategy():
    base = state_variables.map(Variable)
    return st.recursive(
        base,
        lambda children: st.one_of(
            st.tuples(children, children).map(lambda p: Apply("assert", p)),
            st.tuples(children, children).map(lambda p: Apply("combine", p)),
            children.map(lambda t: Apply("complement", (t,))),
            st.tuples(children, children).map(
                lambda p: Apply("mask", (p[0], Apply("genmask", (p[1],))))
            ),
        ),
        max_leaves=5,
    )


clause_set_strategy = st.frozensets(
    st.frozensets(
        st.integers(min_value=1, max_value=N).flatmap(
            lambda i: st.sampled_from([i, -i])
        ),
        min_size=1,
        max_size=3,
    ),
    max_size=3,
).map(lambda cs: ClauseSet(VOCAB, cs))


@given(term_strategy(), st.data())
@settings(max_examples=60, deadline=None)
def test_random_terms_emulate(term: Term, data):
    if term.sort is not Sort.S:
        return
    env = {
        name: data.draw(clause_set_strategy, label=name) for name in term.variables()
    }
    assert EMU.check_term(term, env)
