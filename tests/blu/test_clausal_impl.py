"""Tests for BLU--C, the clause-level implementation (Algorithms 2.3.3/2.3.5/2.3.8)."""

import pytest

from repro.blu.clausal_genmask import (
    clausal_genmask,
    cls_assignments,
    depends_on,
    ldiff,
)
from repro.blu.clausal_impl import (
    ClausalImplementation,
    clausal_combine,
    clausal_complement,
)
from repro.blu.clausal_mask import clausal_mask
from repro.errors import VocabularyMismatchError
from repro.logic.clauses import ClauseSet
from repro.logic.propositions import Vocabulary
from repro.logic.semantics import (
    clause_set_dependency_indices,
    models_of_clauses,
)
from repro.logic.structures import saturate_on

VOCAB = Vocabulary.standard(5)
IMPL = ClausalImplementation(VOCAB)
RAW = ClausalImplementation(VOCAB, simplify=False)

PAPER_PHI = ClauseSet.from_strs(
    VOCAB, ["~A1 | A3", "A1 | A4", "A4 | A5", "~A1 | ~A2 | ~A5"]
)


def cs(*texts: str) -> ClauseSet:
    return ClauseSet.from_strs(VOCAB, texts)


class TestAssert:
    def test_is_union(self):
        assert RAW.op_assert(cs("A1"), cs("A2")) == cs("A1", "A2")

    def test_models_intersect(self):
        left, right = cs("A1 | A2"), cs("~A1 | A3")
        assert models_of_clauses(IMPL.op_assert(left, right)) == models_of_clauses(
            left
        ) & models_of_clauses(right)

    def test_vocabulary_mismatch(self):
        with pytest.raises(VocabularyMismatchError):
            IMPL.op_assert(cs("A1"), ClauseSet.from_strs(Vocabulary.standard(2), ["A1"]))


class TestCombine:
    def test_pairwise_disjunction(self):
        out = clausal_combine(cs("A1", "A2"), cs("A3"), simplify=False)
        assert out == cs("A1 | A3", "A2 | A3")

    def test_models_union(self):
        left, right = cs("A1", "A2"), cs("~A1 | A3")
        assert models_of_clauses(IMPL.op_combine(left, right)) == models_of_clauses(
            left
        ) | models_of_clauses(right)

    def test_tautologous_products_dropped(self):
        out = clausal_combine(cs("A1"), cs("~A1"), simplify=False)
        assert out == ClauseSet.tautology(VOCAB)

    def test_combine_with_contradiction_is_identity(self):
        state = cs("A1 | A2", "A3")
        assert IMPL.op_combine(state, ClauseSet.contradiction(VOCAB)) == state

    def test_example_325_product_size(self):
        # Example 3.2.5: combining a 4-clause set with a 4-clause set
        # yields 16 products before simplification.
        left = cs("A4 | A5", "A3 | A4", "A5", "A1 | A2")
        right = cs("~A1 | A3", "A1 | A4", "A4 | A5", "~A1 | ~A2 | ~A5")
        out = clausal_combine(left, right, simplify=False)
        # Some of the 16 products coincide or are tautologous; model
        # equality is the real requirement:
        assert models_of_clauses(out) == models_of_clauses(left) | models_of_clauses(
            right
        )


class TestComplement:
    def test_complement_of_unit_clauses(self):
        assert clausal_complement(cs("A1", "A2")) == cs("~A1 | ~A2")

    def test_complement_of_single_clause(self):
        assert clausal_complement(cs("A1 | A2")) == cs("~A1", "~A2")

    def test_models_complement(self):
        for state in (cs("A1"), cs("A1 | A2", "~A3"), PAPER_PHI):
            got = models_of_clauses(IMPL.op_complement(state))
            expected = frozenset(range(32)) - models_of_clauses(state)
            assert got == expected

    def test_complement_of_tautology_is_contradiction(self):
        assert clausal_complement(ClauseSet.tautology(VOCAB)).has_empty_clause

    def test_complement_of_contradiction_is_tautology(self):
        assert clausal_complement(ClauseSet.contradiction(VOCAB)) == ClauseSet.tautology(
            VOCAB
        )

    def test_double_complement_preserves_models(self):
        state = cs("A1 | A2", "~A2 | A3")
        twice = IMPL.op_complement(IMPL.op_complement(state))
        assert models_of_clauses(twice) == models_of_clauses(state)

    def test_raw_output_size_is_product_of_clause_lengths(self):
        state = cs("A1 | A2", "A3 | A4 | A5")
        out = clausal_complement(state, simplify=False)
        assert len(out) == 6  # 2 x 3 choices, none tautologous


class TestMask:
    def test_paper_example_315(self):
        masked = clausal_mask(PAPER_PHI, [0, 1])
        assert masked == cs("A4 | A5", "A3 | A4")

    def test_mask_is_world_saturation(self):
        xor_state = cs("A1 | A2", "~A1 | ~A2", "A3")
        for state in (PAPER_PHI, xor_state, cs("A1", "A2 | A3")):
            for indices in ([0], [1, 3], [0, 1, 2]):
                projected = clausal_mask(state, indices)
                expected = saturate_on(models_of_clauses(state), set(indices))
                assert models_of_clauses(projected) == expected

    def test_masked_letters_absent(self):
        masked = clausal_mask(PAPER_PHI, [0, 1])
        assert not (masked.prop_indices & {0, 1})

    def test_empty_mask_is_identity(self):
        assert clausal_mask(PAPER_PHI, []) == PAPER_PHI

    def test_mask_everything_gives_tautology_when_satisfiable(self):
        assert clausal_mask(PAPER_PHI, range(5)) == ClauseSet.tautology(VOCAB)

    def test_mask_everything_keeps_contradiction(self):
        state = cs("A1", "~A1")
        assert clausal_mask(state, range(5)).has_empty_clause

    def test_operator_validates_mask_value(self):
        with pytest.raises(VocabularyMismatchError):
            IMPL.op_mask(PAPER_PHI, {0})  # plain set, not frozenset
        with pytest.raises(VocabularyMismatchError):
            IMPL.op_mask(PAPER_PHI, frozenset({9}))

    def test_mask_of_names_helper(self):
        assert IMPL.mask_of_names(["A1", "A3"]) == frozenset({0, 2})


class TestGenmask:
    def test_paper_example(self):
        assert clausal_genmask(cs("A1 | A2")) == frozenset({0, 1})

    def test_agrees_with_bruteforce_dependency(self):
        samples = [
            cs("A1 | A2"),
            cs("A1", "~A2 | A3"),
            cs("A1 | A2", "A1 | ~A2"),       # semantically just A1
            PAPER_PHI,
            ClauseSet.tautology(VOCAB),
            ClauseSet.contradiction(VOCAB),
        ]
        for state in samples:
            assert clausal_genmask(state) == clause_set_dependency_indices(state)

    def test_letter_not_occurring_is_independent(self):
        assert not depends_on(cs("A1 | A2"), 4)

    def test_syntactic_occurrence_without_dependence(self):
        state = cs("A1 | A2", "A1 | ~A2")
        assert not depends_on(state, 1)
        assert depends_on(state, 0)

    def test_cls_assignment_count(self):
        state = cs("A1 | A2", "~A3")
        assert len(list(cls_assignments(state))) == 8  # 2^3 total assignments

    def test_ldiff_pair_structure(self):
        state = cs("A1 | A2")
        pairs = list(ldiff(state, 0))
        assert len(pairs) == 2  # one per assignment of A2
        for with_a, without_a in pairs:
            assert 1 in with_a and -1 in without_a
            assert with_a - {1} == without_a - {-1}

    def test_operator_form(self):
        assert IMPL.op_genmask(cs("A1 | A2")) == frozenset({0, 1})


class TestProgramExecution:
    def test_insert_program_paper_315(self):
        from repro.blu.parser import parse_program

        insert = parse_program("(lambda (s0 s1) (assert (mask s0 (genmask s1)) s1))")
        out = IMPL.run(insert, PAPER_PHI, cs("A1 | A2"))
        assert out == cs("A1 | A2", "A4 | A5", "A3 | A4")
