"""Tests for BLU--I, the instance-level implementation (repro.blu.instance_impl)."""

import pytest

from repro.blu.instance_impl import InstanceImplementation
from repro.blu.parser import parse_program, parse_term
from repro.db.instances import WorldSet
from repro.db.masks import KeyMask, SimpleMask
from repro.errors import EvaluationError, VocabularyMismatchError
from repro.logic.propositions import Vocabulary

VOCAB = Vocabulary.standard(3)
IMPL = InstanceImplementation(VOCAB)


def ws(*texts: str) -> WorldSet:
    return WorldSet.from_texts(VOCAB, texts)


class TestDomains:
    def test_state_membership(self):
        assert IMPL.is_state(WorldSet.total(VOCAB))
        assert not IMPL.is_state(WorldSet.total(Vocabulary.standard(2)))
        assert not IMPL.is_state("not a state")

    def test_mask_membership(self):
        assert IMPL.is_mask(SimpleMask(VOCAB, [0]))
        assert IMPL.is_mask(KeyMask(VOCAB, lambda w: w))
        assert not IMPL.is_mask(SimpleMask(Vocabulary.standard(2), [0]))
        assert not IMPL.is_mask(frozenset({0}))


class TestOperators:
    def test_assert_is_intersection(self):
        assert IMPL.op_assert(ws("A1"), ws("A2")) == ws("A1 & A2")

    def test_combine_is_union(self):
        assert IMPL.op_combine(ws("A1"), ws("A2")) == ws("A1 | A2")

    def test_complement(self):
        assert IMPL.op_complement(ws("A1")) == ws("~A1")

    def test_mask_saturates(self):
        state = ws("A1 & A2")
        assert IMPL.op_mask(state, SimpleMask(VOCAB, [0])) == ws("A2")

    def test_mask_accepts_general_masks(self):
        parity = KeyMask(VOCAB, lambda w: bin(w).count("1") % 2)
        out = IMPL.op_mask(WorldSet(VOCAB, {0b000}), parity)
        assert out == WorldSet(VOCAB, {0b000, 0b011, 0b101, 0b110})

    def test_genmask_is_dependency_mask(self):
        assert IMPL.op_genmask(ws("A1 | A2")) == SimpleMask(VOCAB, [0, 1])

    def test_genmask_of_tautology_is_empty_mask(self):
        assert IMPL.op_genmask(WorldSet.total(VOCAB)) == SimpleMask(VOCAB, [])

    def test_vocabulary_mismatch_raises(self):
        foreign = WorldSet.total(Vocabulary.standard(2))
        with pytest.raises(VocabularyMismatchError):
            IMPL.op_assert(ws("A1"), foreign)
        with pytest.raises(VocabularyMismatchError):
            IMPL.op_mask(ws("A1"), SimpleMask(Vocabulary.standard(2), [0]))


class TestBooleanAlgebraLaws:
    """Observation after 2.2.2: combine/assert/complement make IDB[D] a
    Boolean algebra."""

    STATES = [
        WorldSet.empty(VOCAB),
        WorldSet.total(VOCAB),
        WorldSet.from_texts(VOCAB, ["A1"]),
        WorldSet.from_texts(VOCAB, ["A1 | A2"]),
        WorldSet.from_texts(VOCAB, ["A2 & A3"]),
    ]

    def test_de_morgan(self):
        for x in self.STATES:
            for y in self.STATES:
                lhs = IMPL.op_complement(IMPL.op_combine(x, y))
                rhs = IMPL.op_assert(IMPL.op_complement(x), IMPL.op_complement(y))
                assert lhs == rhs

    def test_absorption(self):
        for x in self.STATES:
            for y in self.STATES:
                assert IMPL.op_combine(x, IMPL.op_assert(x, y)) == x

    def test_complement_laws(self):
        for x in self.STATES:
            assert IMPL.op_assert(x, IMPL.op_complement(x)) == WorldSet.empty(VOCAB)
            assert IMPL.op_combine(x, IMPL.op_complement(x)) == WorldSet.total(VOCAB)


class TestProgramExecution:
    def test_insert_program(self):
        insert = parse_program("(lambda (s0 s1) (assert (mask s0 (genmask s1)) s1))")
        state = ws("A1 & A2 & A3")
        out = IMPL.run(insert, state, ws("~A1"))
        # A1 was known true; inserting ~A1 masks A1 then asserts ~A1.
        assert out == ws("~A1 & A2 & A3")

    def test_run_arity_check(self):
        program = parse_program("(lambda (s0 s1) (assert s0 s1))")
        with pytest.raises(EvaluationError, match="expects 2"):
            IMPL.run(program, ws("A1"))

    def test_run_sort_check_on_arguments(self):
        program = parse_program("(lambda (s0 m0) (mask s0 m0))")
        with pytest.raises(EvaluationError, match="sort"):
            IMPL.run(program, ws("A1"), ws("A2"))  # state where mask expected

    def test_unbound_variable(self):
        term = parse_term("(complement s7)")
        with pytest.raises(EvaluationError, match="unbound"):
            IMPL.evaluate(term, {})

    def test_evaluation_of_nested_term(self):
        term = parse_term("(combine (assert s1 s0) (assert (complement s1) s0))")
        out = IMPL.evaluate(term, {"s0": ws("A2"), "s1": ws("A1")})
        assert out == ws("A2")  # split on A1 and recombine
