"""Tests for named-program environments (repro.blu.definitions)."""

import pytest

from repro.blu.definitions import (
    SIMPLE_HLU_SOURCE,
    ProgramEnvironment,
    default_environment,
)
from repro.blu.parser import parse_program
from repro.errors import ParseError
from repro.hlu.programs import (
    HLU_ASSERT,
    HLU_CLEAR,
    HLU_DELETE,
    HLU_INSERT,
    HLU_MODIFY,
    IDENTITY,
)


class TestEnvironment:
    def test_define_and_lookup(self):
        env = ProgramEnvironment()
        program = parse_program("(lambda (s0) (complement s0))")
        env.define("negate", program)
        assert env["negate"] == program
        assert "negate" in env and len(env) == 1

    def test_rebinding_rejected(self):
        env = ProgramEnvironment()
        program = parse_program("(lambda (s0) s0)")
        env.define("id", program)
        with pytest.raises(ParseError, match="already defined"):
            env.define("id", program)

    def test_missing_name(self):
        with pytest.raises(ParseError, match="no program"):
            ProgramEnvironment()["nope"]

    def test_load_returns_names_in_order(self):
        env = ProgramEnvironment()
        names = env.load(
            "(define a (lambda (s0) s0)) (define b (lambda (s0) (complement s0)))"
        )
        assert names == ["a", "b"]
        assert env.names() == ("a", "b")

    def test_load_rejects_non_define_forms(self):
        with pytest.raises(ParseError, match="define"):
            ProgramEnvironment().load("(lambda (s0) s0)")
        with pytest.raises(ParseError):
            ProgramEnvironment().load("(define 3 (lambda (s0) s0))".replace("3", "(x)"))


class TestPaperDefinitions:
    """The shipped 3.1.2 source must parse to exactly the programs the
    library uses -- the definitions are data, not duplicated code."""

    def test_default_environment_names(self):
        env = default_environment()
        assert env.names() == (
            "HLU-assert",
            "HLU-clear",
            "HLU-insert",
            "HLU-delete",
            "HLU-modify",
            "I",
        )

    @pytest.mark.parametrize(
        "name,constant",
        [
            ("HLU-assert", HLU_ASSERT),
            ("HLU-clear", HLU_CLEAR),
            ("HLU-insert", HLU_INSERT),
            ("HLU-delete", HLU_DELETE),
            ("HLU-modify", HLU_MODIFY),
            ("I", IDENTITY),
        ],
    )
    def test_source_matches_constants(self, name, constant):
        assert default_environment()[name] == constant

    def test_source_contains_comments(self):
        # Comments in the source must be tolerated by the reader.
        assert ";" in SIMPLE_HLU_SOURCE
