"""Tests for the s-expression layer (repro.blu.sexpr)."""

import pytest

from repro.blu.sexpr import read_sexpr, read_sexprs, sexpr_atoms, write_sexpr
from repro.errors import ParseError


class TestReader:
    def test_atom(self):
        assert read_sexpr("s0") == "s0"

    def test_flat_list(self):
        assert read_sexpr("(assert s0 s1)") == ["assert", "s0", "s1"]

    def test_nested(self):
        assert read_sexpr("(mask s0 (genmask s1))") == [
            "mask",
            "s0",
            ["genmask", "s1"],
        ]

    def test_empty_list(self):
        assert read_sexpr("()") == []

    def test_whitespace_insensitive(self):
        text = """(combine
                     (assert s1 s0)
                     (assert (complement s2) s0))"""
        assert read_sexpr(text) == [
            "combine",
            ["assert", "s1", "s0"],
            ["assert", ["complement", "s2"], "s0"],
        ]

    def test_comments_stripped(self):
        assert read_sexpr("(assert s0 s1) ; the identity-ish\n") == [
            "assert",
            "s0",
            "s1",
        ]

    def test_dotted_atoms(self):
        # Macro-renamed variables like s1.0 must survive (Section 3.2).
        assert read_sexpr("(assert s0 s1.0)") == ["assert", "s0", "s1.0"]

    @pytest.mark.parametrize("text", ["", "(", ")", "(a (b)", "a b"])
    def test_malformed(self, text):
        with pytest.raises(ParseError):
            read_sexpr(text)


class TestReadMany:
    def test_sequence_of_defines(self):
        text = "(define f (lambda (s0) s0)) (define g (lambda (s0) s0))"
        exprs = read_sexprs(text)
        assert len(exprs) == 2
        assert exprs[0][0] == "define"

    def test_empty_input_gives_empty_list(self):
        assert read_sexprs("  ; only a comment\n") == []


class TestWriter:
    @pytest.mark.parametrize(
        "text",
        [
            "s0",
            "(assert s0 s1)",
            "(mask s0 (genmask s1))",
            "(lambda (s0 s1 s2) (combine (assert s1 s0) (assert (complement s2) s0)))",
        ],
    )
    def test_roundtrip(self, text):
        expr = read_sexpr(text)
        assert read_sexpr(write_sexpr(expr)) == expr

    def test_canonical_spacing(self):
        assert write_sexpr(["a", ["b", "c"]]) == "(a (b c))"


class TestAtoms:
    def test_collects_in_order_with_repeats(self):
        expr = read_sexpr("(assert s0 (mask s0 m1))")
        assert sexpr_atoms(expr) == ["assert", "s0", "mask", "s0", "m1"]
