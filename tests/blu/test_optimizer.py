"""Tests for the BLU term optimizer (repro.blu.optimizer)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.blu.instance_impl import InstanceImplementation
from repro.blu.optimizer import optimize_program, optimize_term, term_size
from repro.blu.parser import parse_program, parse_term
from repro.blu.syntax import Apply, Sort, Variable
from repro.db.instances import WorldSet
from repro.db.masks import SimpleMask
from repro.logic.propositions import Vocabulary

VOCAB = Vocabulary.standard(3)
IMPL = InstanceImplementation(VOCAB)


class TestRules:
    @pytest.mark.parametrize(
        "before,after",
        [
            ("(assert s0 s0)", "s0"),                              # R1
            ("(combine s0 s0)", "s0"),                             # R2
            ("(complement (complement s0))", "s0"),                # R3
            ("(mask (mask s0 m0) m0)", "(mask s0 m0)"),            # R5
            ("(assert (assert s0 s1) s1)", "(assert s0 s1)"),      # R6
            ("(combine (combine s0 s1) s1)", "(combine s0 s1)"),   # R7
            # symmetric absorption variants
            ("(assert s1 (assert s0 s1))", "(assert s0 s1)"),
            ("(combine s0 (combine s0 s1))", "(combine s0 s1)"),
            # nesting: rewrites apply bottom-up and cascade
            (
                "(complement (complement (assert s0 s0)))",
                "s0",
            ),
            (
                "(assert (complement (complement s0)) s0)",
                "s0",
            ),
        ],
    )
    def test_rewrites(self, before, after):
        assert optimize_term(parse_term(before)) == parse_term(after)

    @pytest.mark.parametrize(
        "text",
        [
            "(assert s0 s1)",
            "(assert s0 (complement s0))",                       # R4 kept
            "(mask (mask s0 m0) m1)",                            # masks differ
            "(assert (mask (assert s0 s1) (genmask s1)) s1)",    # R8: HLU-insert
            "(combine (assert s0 s1) (assert s0 (complement s1)))",
        ],
    )
    def test_non_rewrites(self, text):
        assert optimize_term(parse_term(text)) == parse_term(text)

    def test_masking_then_asserting_is_not_simplified_away(self):
        """R8, semantically: in HLU-insert the final (assert . s1) is NOT
        redundant after the mask -- dropping it changes the result."""
        full = parse_term("(assert (mask s0 (genmask s1)) s1)")
        dropped = parse_term("(mask s0 (genmask s1))")
        state = WorldSet.from_texts(VOCAB, ["~A1"])
        payload = WorldSet.from_texts(VOCAB, ["A1"])
        env = {"s0": state, "s1": payload}
        assert IMPL.evaluate(full, env) != IMPL.evaluate(dropped, env)


class TestPrograms:
    def test_program_body_optimised(self):
        program = parse_program("(lambda (s0 s1) (assert (assert s0 s1) s1))")
        assert str(optimize_program(program)) == "(lambda (s0 s1) (assert s0 s1))"

    def test_parameter_eliminating_rewrite_is_refused(self):
        # (combine s1 s1) -> s1 would drop no parameter here, but
        # (assert s0 (assert s1 s1)) -> (assert s0 s1) keeps both; build a
        # case where a parameter would vanish:
        program = parse_program(
            "(lambda (s0 s1) (assert s0 (complement (complement (assert s1 s1)))))"
        )
        optimised = optimize_program(program)
        # s1 survives (the rewrite keeps it), so optimisation applies:
        assert str(optimised) == "(lambda (s0 s1) (assert s0 s1))"

    def test_hlu_programs_are_already_minimal(self):
        from repro.hlu.programs import SIMPLE_HLU_PROGRAMS

        for name, program in SIMPLE_HLU_PROGRAMS.items():
            assert optimize_program(program) == program, name

    def test_size_never_grows(self):
        program = parse_program(
            "(lambda (s0 s1) (combine (combine (assert s0 s0) s1) s1))"
        )
        assert term_size(optimize_program(program).body) <= term_size(program.body)


# --- semantic equivalence, property-based ----------------------------------

state_variables = st.sampled_from(["s0", "s1"])
mask_variables = st.sampled_from(["m0", "m1"])


def term_strategy():
    base = state_variables.map(Variable)
    masks = st.one_of(
        mask_variables.map(Variable),
        base.map(lambda t: Apply("genmask", (t,))),
    )
    return st.recursive(
        base,
        lambda children: st.one_of(
            st.tuples(children, children).map(lambda p: Apply("assert", p)),
            st.tuples(children, children).map(lambda p: Apply("combine", p)),
            children.map(lambda t: Apply("complement", (t,))),
            st.tuples(children, masks).map(lambda p: Apply("mask", p)),
        ),
        max_leaves=7,
    )


world_sets = st.frozensets(
    st.integers(min_value=0, max_value=7), max_size=8
).map(lambda ws: WorldSet(VOCAB, ws))
simple_masks = st.frozensets(st.integers(min_value=0, max_value=2), max_size=3).map(
    lambda indices: SimpleMask(VOCAB, indices)
)


@given(term_strategy(), st.data())
@settings(max_examples=150, deadline=None)
def test_optimizer_preserves_semantics(term, data):
    if term.sort is not Sort.S:
        return
    environment = {}
    for name in term.variables():
        if name.startswith("s"):
            environment[name] = data.draw(world_sets, label=name)
        else:
            environment[name] = data.draw(simple_masks, label=name)
    optimised = optimize_term(term)
    assert term_size(optimised) <= term_size(term)
    assert IMPL.evaluate(optimised, environment) == IMPL.evaluate(term, environment)
