"""Tests for BLU abstract syntax and sort checking (repro.blu.syntax)."""

import pytest

from repro.blu.parser import parse_program, parse_term
from repro.blu.syntax import (
    SIGNATURE,
    Apply,
    BluProgram,
    Sort,
    Variable,
    variable_sort,
)
from repro.errors import ArityError, ParseError, SortError


class TestVariables:
    def test_sort_from_leading_letter(self):
        assert variable_sort("s0") is Sort.S
        assert variable_sort("m3") is Sort.M
        assert variable_sort("s1.0") is Sort.S  # macro-renamed

    def test_unsortable_name_rejected(self):
        with pytest.raises(SortError):
            variable_sort("x1")

    def test_variable_term(self):
        v = Variable("m2")
        assert v.sort is Sort.M
        assert v.variables() == ("m2",)


class TestSignature:
    def test_paper_signature(self):
        assert SIGNATURE["assert"] == ((Sort.S, Sort.S), Sort.S)
        assert SIGNATURE["combine"] == ((Sort.S, Sort.S), Sort.S)
        assert SIGNATURE["complement"] == ((Sort.S,), Sort.S)
        assert SIGNATURE["mask"] == ((Sort.S, Sort.M), Sort.S)
        assert SIGNATURE["genmask"] == ((Sort.S,), Sort.M)


class TestApply:
    def test_well_sorted_term(self):
        term = Apply("mask", (Variable("s0"), Variable("m0")))
        assert term.sort is Sort.S

    def test_genmask_produces_mask_sort(self):
        term = Apply("genmask", (Variable("s1"),))
        assert term.sort is Sort.M

    def test_unknown_operator(self):
        with pytest.raises(SortError, match="unknown"):
            Apply("frobnicate", (Variable("s0"),))

    def test_wrong_arity(self):
        with pytest.raises(ArityError):
            Apply("assert", (Variable("s0"),))

    def test_wrong_argument_sort(self):
        with pytest.raises(SortError, match="sort"):
            Apply("assert", (Variable("s0"), Variable("m0")))
        with pytest.raises(SortError):
            Apply("mask", (Variable("s0"), Variable("s1")))

    def test_mask_of_genmask_composes(self):
        term = parse_term("(mask s0 (genmask s1))")
        assert term.sort is Sort.S

    def test_variables_in_first_appearance_order(self):
        term = parse_term("(combine (assert s1 s0) (assert (complement s2) s0))")
        assert term.variables() == ("s1", "s0", "s2")

    def test_structural_equality_and_hash(self):
        t1 = parse_term("(assert s0 s1)")
        t2 = parse_term("(assert s0 s1)")
        assert t1 == t2 and hash(t1) == hash(t2)
        assert t1 != parse_term("(assert s1 s0)")

    def test_str_roundtrips(self):
        text = "(combine (assert s1 (mask (assert s2 s0) (genmask s1))) (assert (complement s2) s0))"
        assert str(parse_term(text)) == text


class TestProgram:
    def test_example_213(self):
        # The paper's example program (2.1.3), with the mask argument order
        # normalised to the Definition 3.1.2 convention.
        program = parse_program(
            """
            (lambda (s0 s1 s2)
              (combine
                (assert s1 (mask (assert s2 s0) (genmask s1)))
                (assert (complement s2) s0)))
            """
        )
        assert program.parameters == ("s0", "s1", "s2")
        assert program.body.sort is Sort.S

    def test_must_start_with_s0(self):
        with pytest.raises(SortError, match="s0"):
            parse_program("(lambda (s1 s0) (assert s0 s1))")

    def test_body_must_mention_all_parameters(self):
        with pytest.raises(SortError, match="unused"):
            parse_program("(lambda (s0 s1) (complement s0))")

    def test_body_must_not_have_free_variables(self):
        with pytest.raises(SortError, match="free"):
            parse_program("(lambda (s0) (assert s0 s1))")

    def test_body_must_be_s_term(self):
        with pytest.raises(SortError, match="S-term"):
            BluProgram(("s0",), Apply("genmask", (Variable("s0"),)))

    def test_duplicate_parameters_rejected(self):
        with pytest.raises(SortError, match="duplicate"):
            BluProgram(("s0", "s0"), parse_term("(assert s0 s0)"))

    def test_mask_parameters_allowed(self):
        program = parse_program("(lambda (s0 m0) (mask s0 m0))")
        assert program.parameters == ("s0", "m0")

    def test_non_lambda_rejected(self):
        with pytest.raises(ParseError):
            parse_program("(assert s0 s1)")

    def test_to_sexpr_roundtrip(self):
        text = "(lambda (s0 s1) (assert (mask s0 (genmask s1)) s1))"
        program = parse_program(text)
        assert str(program) == text
