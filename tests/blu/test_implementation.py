"""Tests for the Implementation ABC and evaluator (repro.blu.implementation).

Includes a third *toy* implementation of BLU -- a counting algebra that
tracks only how many possible worlds a state has an upper bound for --
to demonstrate that Definition 2.2.1 really is an open interface: any
algebra with the right signature runs unmodified BLU programs.
"""

import pytest

from repro.blu.implementation import Implementation, evaluate_term
from repro.blu.parser import parse_program, parse_term
from repro.errors import EvaluationError


class BoundAlgebra(Implementation):
    """States are integers (upper bounds on world counts) over a fixed
    total; masks are floats in (0, 1] (coarseness factors).  Not a
    faithful semantics -- deliberately -- just a distinct, law-abiding
    algebra for exercising the evaluator."""

    TOTAL = 1024

    def is_state(self, value):
        return isinstance(value, int) and 0 <= value <= self.TOTAL

    def is_mask(self, value):
        return isinstance(value, float) and 0 < value <= 1

    def op_assert(self, state, other):
        return min(state, other)

    def op_combine(self, state, other):
        return min(self.TOTAL, state + other)

    def op_complement(self, state):
        return self.TOTAL - state

    def op_mask(self, state, mask):
        return min(self.TOTAL, int(state / mask))

    def op_genmask(self, state):
        return 1.0 if state == 0 else max(state / self.TOTAL, 1e-6)


IMPL = BoundAlgebra()


class TestEvaluator:
    def test_variables_resolve_from_environment(self):
        term = parse_term("(assert s0 s1)")
        assert evaluate_term(IMPL, term, {"s0": 10, "s1": 3}) == 3

    def test_nested_evaluation_order(self):
        term = parse_term("(combine (assert s0 s1) (complement s0))")
        got = evaluate_term(IMPL, term, {"s0": 100, "s1": 40})
        assert got == min(1024, 40 + (1024 - 100))

    def test_mask_and_genmask_dispatch(self):
        term = parse_term("(mask s0 (genmask s1))")
        got = evaluate_term(IMPL, term, {"s0": 100, "s1": 512})
        assert got == int(100 / 0.5)

    def test_unbound_variable_raises(self):
        with pytest.raises(EvaluationError, match="unbound"):
            evaluate_term(IMPL, parse_term("(complement s9)"), {})


class TestRun:
    def test_program_runs_in_toy_algebra(self):
        program = parse_program(
            "(lambda (s0 s1) (assert (mask s0 (genmask s1)) s1))"
        )
        assert IMPL.run(program, 100, 512) == min(int(100 / 0.5), 512)

    def test_arity_mismatch(self):
        program = parse_program("(lambda (s0 s1) (assert s0 s1))")
        with pytest.raises(EvaluationError, match="expects 2"):
            IMPL.run(program, 1, 2, 3)

    def test_argument_sort_validation(self):
        program = parse_program("(lambda (s0 m0) (mask s0 m0))")
        with pytest.raises(EvaluationError, match="sort"):
            IMPL.run(program, 10, 20)  # int where a float mask is required
        assert IMPL.run(program, 10, 0.5) == 20

    def test_check_sorted_direct(self):
        from repro.blu.syntax import Sort

        IMPL.check_sorted(5, Sort.S)
        with pytest.raises(EvaluationError):
            IMPL.check_sorted(5, Sort.M)


class TestAbstractBase:
    def test_base_class_operators_are_abstract(self):
        base = Implementation()
        for method, args in [
            ("op_assert", (1, 2)),
            ("op_combine", (1, 2)),
            ("op_complement", (1,)),
            ("op_mask", (1, 2)),
            ("op_genmask", (1,)),
            ("is_state", (1,)),
            ("is_mask", (1,)),
        ]:
            with pytest.raises(NotImplementedError):
                getattr(base, method)(*args)
