"""Failure injection: the emulation harness must *catch* broken algorithms.

A verification suite is only trustworthy if it fails when the code is
wrong.  Each mutant below re-implements one BLU--C operator with a
classic plausible bug -- precisely the mistakes the paper's algorithms
are designed to avoid -- and the canonical-emulation check is required
to flag every one of them:

* ``combine`` as clause-set union (confusing it with ``assert``);
* ``mask`` as bare ``drop`` without the resolution closure (losing the
  cross-letter consequences ``rclosure`` exists to preserve);
* ``genmask`` as *syntactic* letter occurrence (the Wilkins-flavoured
  shortcut Remark 1.4.7 rejects);
* ``complement`` negating clause-by-clause instead of distributing.
"""

import random


from repro.blu.clausal_impl import ClausalImplementation
from repro.blu.emulation import canonical_emulation
from repro.blu.instance_impl import InstanceImplementation
from repro.logic.clauses import Clause, ClauseSet
from repro.logic.propositions import Vocabulary
from repro.logic.resolution import drop
from repro.workloads.generators import random_clause_set

VOCAB = Vocabulary.standard(4)
INSTANCE = InstanceImplementation(VOCAB)


class CombineAsUnion(ClausalImplementation):
    """Mutant: combine returns the clause union (that's assert!)."""

    def op_combine(self, state, other):
        return state.union(other)


class MaskWithoutRclosure(ClausalImplementation):
    """Mutant: mask just drops clauses, skipping the resolution step."""

    def op_mask(self, state, mask):
        return drop(state, mask)


class SyntacticGenmask(ClausalImplementation):
    """Mutant: genmask returns the letters *occurring*, not depended on."""

    def op_genmask(self, state):
        return frozenset(state.prop_indices)


class ClausewiseComplement(ClausalImplementation):
    """Mutant: complement negates each clause's literals in place."""

    def op_complement(self, state):
        flipped: set[Clause] = {
            frozenset(-lit for lit in clause) for clause in state.clauses
        }
        return ClauseSet(state.vocabulary, flipped)


def hunts_down(mutant: ClausalImplementation, operator: str, trials: int = 200) -> bool:
    """Does the emulation check expose the mutant within ``trials`` random
    instances?"""
    emulation = canonical_emulation(mutant, INSTANCE)
    rng = random.Random(101)
    for _ in range(trials):
        left = random_clause_set(rng, VOCAB, rng.randint(0, 4), width=2)
        right = random_clause_set(rng, VOCAB, rng.randint(0, 4), width=2)
        if operator in ("assert", "combine"):
            ok = emulation.check_operator(operator, left, right)
        elif operator == "mask":
            indices = frozenset(rng.sample(range(4), rng.randint(1, 3)))
            ok = emulation.check_operator(operator, left, indices)
        else:
            ok = emulation.check_operator(operator, left)
        if not ok:
            return True
    return False


class TestMutantsAreCaught:
    def test_combine_as_union_detected(self):
        assert hunts_down(CombineAsUnion(VOCAB), "combine")

    def test_mask_without_rclosure_detected(self):
        # This is *the* reason rclosure exists (Algorithm 2.3.5): dropping
        # the A-clauses without resolving first loses consequences.
        assert hunts_down(MaskWithoutRclosure(VOCAB), "mask")

    def test_syntactic_genmask_detected(self):
        assert hunts_down(SyntacticGenmask(VOCAB), "genmask")

    def test_clausewise_complement_detected(self):
        assert hunts_down(ClausewiseComplement(VOCAB), "complement")

    def test_correct_implementation_survives_the_same_hunt(self):
        correct = ClausalImplementation(VOCAB)
        for operator in ("assert", "combine", "complement", "mask", "genmask"):
            assert not hunts_down(correct, operator, trials=60), operator


class TestMutantsBreakPaperExamples:
    """The worked examples alone already expose two of the mutants."""

    # The Example 3.1.5 pattern whose mask *requires* the resolvent
    # A3 | A4 to be manufactured before the A1-clauses are dropped.
    PAPER_STATE = ("~A1 | A3", "A1 | A4")

    def test_mask_mutant_fails_example_315_style_mask(self):
        state = ClauseSet.from_strs(VOCAB, self.PAPER_STATE)
        good = ClausalImplementation(VOCAB)
        bad = MaskWithoutRclosure(VOCAB)
        from repro.logic.semantics import models_of_clauses

        assert models_of_clauses(
            good.op_mask(state, frozenset({0}))
        ) != models_of_clauses(bad.op_mask(state, frozenset({0})))

    def test_syntactic_genmask_differs_on_semantic_payload(self):
        payload = ClauseSet.from_strs(VOCAB, ["A1 | A2", "A1 | ~A2"])
        good = ClausalImplementation(VOCAB)
        bad = SyntacticGenmask(VOCAB)
        assert good.op_genmask(payload) == frozenset({0})
        assert bad.op_genmask(payload) == frozenset({0, 1})
