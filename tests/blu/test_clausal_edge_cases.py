"""Edge cases for BLU--C: the distinguished elements 0 (box) and 1
(the empty clause set) through every operator, plus empty-vocabulary and
degenerate-mask corners."""


from repro.blu.clausal_genmask import clausal_genmask
from repro.blu.clausal_impl import (
    ClausalImplementation,
    clausal_complement,
)
from repro.blu.clausal_mask import clausal_mask
from repro.logic.clauses import ClauseSet
from repro.logic.propositions import Vocabulary

VOCAB = Vocabulary.standard(3)
IMPL = ClausalImplementation(VOCAB)
TOP = ClauseSet.tautology(VOCAB)          # no clauses: every world
BOTTOM = ClauseSet.contradiction(VOCAB)   # {box}: no world
SOME = ClauseSet.from_strs(VOCAB, ["A1 | A2"])


class TestAssertEdges:
    def test_top_is_neutral(self):
        assert IMPL.op_assert(SOME, TOP) == SOME
        assert IMPL.op_assert(TOP, SOME) == SOME

    def test_bottom_annihilates(self):
        assert IMPL.op_assert(SOME, BOTTOM) == BOTTOM

    def test_top_with_top(self):
        assert IMPL.op_assert(TOP, TOP) == TOP


class TestCombineEdges:
    def test_bottom_is_neutral(self):
        assert IMPL.op_combine(SOME, BOTTOM) == SOME
        assert IMPL.op_combine(BOTTOM, SOME) == SOME

    def test_top_annihilates(self):
        assert IMPL.op_combine(SOME, TOP) == TOP

    def test_bottom_with_bottom(self):
        assert IMPL.op_combine(BOTTOM, BOTTOM) == BOTTOM


class TestComplementEdges:
    def test_complement_swaps_top_and_bottom(self):
        assert clausal_complement(TOP) == BOTTOM
        assert clausal_complement(BOTTOM) == TOP

    def test_complement_of_unit(self):
        unit = ClauseSet.from_strs(VOCAB, ["A1"])
        assert clausal_complement(unit) == ClauseSet.from_strs(VOCAB, ["~A1"])


class TestMaskEdges:
    def test_masking_top_is_top(self):
        assert clausal_mask(TOP, [0, 1, 2]) == TOP

    def test_masking_bottom_is_bottom(self):
        # No worlds to saturate: still no worlds.
        assert clausal_mask(BOTTOM, [0, 1, 2]) == BOTTOM

    def test_mask_with_empty_letter_set(self):
        assert clausal_mask(SOME, []) == SOME

    def test_mask_letters_not_in_state(self):
        assert clausal_mask(SOME, [2]) == SOME

    def test_unsatisfiable_without_explicit_box(self):
        # {A1, ~A1} has no models but no empty clause; masking A1 must
        # *derive* box, not silently produce the tautology.
        hidden = ClauseSet.from_strs(VOCAB, ["A1", "~A1"])
        assert clausal_mask(hidden, [0]).has_empty_clause


class TestGenmaskEdges:
    def test_top_depends_on_nothing(self):
        assert clausal_genmask(TOP) == frozenset()

    def test_bottom_depends_on_nothing(self):
        # Mod = {} is closed under every flip.
        assert clausal_genmask(BOTTOM) == frozenset()

    def test_hidden_contradiction_depends_on_nothing(self):
        hidden = ClauseSet.from_strs(VOCAB, ["A1", "~A1"])
        assert clausal_genmask(hidden) == frozenset()


class TestSingleLetterVocabulary:
    V1 = Vocabulary.standard(1)

    def test_full_cycle(self):
        impl = ClausalImplementation(self.V1)
        a = ClauseSet.from_strs(self.V1, ["A1"])
        not_a = impl.op_complement(a)
        assert not_a == ClauseSet.from_strs(self.V1, ["~A1"])
        assert impl.op_combine(a, not_a) == ClauseSet.tautology(self.V1)
        assert impl.op_assert(a, not_a).has_empty_clause or not (
            impl.op_assert(a, not_a).satisfied_by(0)
            or impl.op_assert(a, not_a).satisfied_by(1)
        )
        assert impl.op_genmask(a) == frozenset({0})
        assert impl.op_mask(a, frozenset({0})) == ClauseSet.tautology(self.V1)


class TestEmptyVocabulary:
    V0 = Vocabulary([])

    def test_only_two_states_exist(self):
        impl = ClausalImplementation(self.V0)
        top = ClauseSet.tautology(self.V0)
        bottom = ClauseSet.contradiction(self.V0)
        assert impl.op_complement(top) == bottom
        assert impl.op_complement(bottom) == top
        assert impl.op_genmask(top) == frozenset()
        assert impl.op_mask(top, frozenset()) == top
