"""Property-based tests for HLU: the clausal and instance backends must
agree on arbitrary update scripts (the emulation theorem, end to end)."""

from hypothesis import given, settings, strategies as st

from repro.hlu import language
from repro.hlu.session import IncompleteDatabase
from repro.logic.formula import And, Iff, Implies, Not, Or, Var

LETTERS = ("A1", "A2", "A3")

variables = st.sampled_from([Var(n) for n in LETTERS])
formulas = st.recursive(
    variables,
    lambda children: st.one_of(
        children.map(Not),
        st.tuples(children, children).map(And),
        st.tuples(children, children).map(Or),
        st.tuples(children, children).map(lambda p: Implies(*p)),
        st.tuples(children, children).map(lambda p: Iff(*p)),
    ),
    max_leaves=4,
)

simple_updates = st.one_of(
    formulas.map(lambda f: language.assert_(f)),
    formulas.map(lambda f: language.insert(f)),
    formulas.map(lambda f: language.delete(f)),
    st.sets(st.sampled_from(LETTERS), min_size=1, max_size=2).map(
        lambda names: language.clear(*sorted(names))
    ),
    st.tuples(formulas, formulas).map(lambda p: language.modify(p[0], p[1])),
)

updates = st.one_of(
    simple_updates,
    st.tuples(formulas, simple_updates).map(
        lambda p: language.where(p[0], p[1])
    ),
    st.tuples(formulas, simple_updates, simple_updates).map(
        lambda p: language.where(p[0], p[1], p[2])
    ),
)


@given(st.lists(updates, min_size=1, max_size=4))
@settings(max_examples=60, deadline=None)
def test_backends_agree_on_random_scripts(script):
    clausal = IncompleteDatabase.over(len(LETTERS), backend="clausal")
    instance = IncompleteDatabase.over(len(LETTERS), backend="instance")
    for update in script:
        clausal.apply(update)
        instance.apply(update)
    assert clausal.worlds() == instance.worlds()


@given(formulas, st.lists(updates, max_size=3))
@settings(max_examples=60, deadline=None)
def test_queries_agree_between_backends(query, script):
    clausal = IncompleteDatabase.over(len(LETTERS), backend="clausal")
    instance = IncompleteDatabase.over(len(LETTERS), backend="instance")
    for update in script:
        clausal.apply(update)
        instance.apply(update)
    assert clausal.is_certain(query) == instance.is_certain(query)
    assert clausal.is_possible(query) == instance.is_possible(query)


@given(formulas)
@settings(max_examples=40, deadline=None)
def test_insert_then_delete_leaves_formula_false(formula):
    db = IncompleteDatabase.over(len(LETTERS), backend="instance")
    db.insert(formula)
    db.delete(formula)
    if db.is_consistent():
        assert db.is_certain(Not(formula))


@given(formulas)
@settings(max_examples=40, deadline=None)
def test_insert_makes_certain(formula):
    db = IncompleteDatabase.over(len(LETTERS), backend="instance")
    db.insert(formula)
    if db.is_consistent():
        assert db.is_certain(formula)


@given(formulas, formulas, simple_updates)
@settings(max_examples=60, deadline=None)
def test_where_keeps_complement_branch_worlds(initial, condition, update):
    """(where W P) carries the S \\ pw(W) worlds through unchanged: every
    pre-update world falsifying W is still possible afterwards.  (P's
    branch may *add* further ~W worlds, so this is containment, not
    equality.)"""
    db = IncompleteDatabase.over(len(LETTERS), backend="instance")
    db.assert_(initial)
    before = db.worlds()
    db.where(condition, update)
    outside_before = before.restricted_to(Not(condition))
    assert outside_before <= db.worlds()
