"""Session edge cases: undo against empty history, backend switching
mid-session, and the audit trail across undo."""

import pytest

from repro.errors import EvaluationError
from repro.hlu import audit
from repro.hlu.session import IncompleteDatabase


@pytest.fixture(autouse=True)
def clean_audit():
    audit.disable()
    yield
    audit.disable()


class TestUndoEdges:
    def test_undo_past_empty_history_raises(self):
        db = IncompleteDatabase.over(3)
        with pytest.raises(EvaluationError):
            db.undo()

    def test_undo_to_empty_then_past_it(self):
        db = IncompleteDatabase.over(3)
        db.insert("A1")
        db.undo()
        assert db.history == ()
        with pytest.raises(EvaluationError):
            db.undo()

    def test_failed_undo_leaves_state_untouched(self):
        db = IncompleteDatabase.over(3)
        db.insert("A1")
        fingerprint = db.clauses().fingerprint
        db.undo()
        with pytest.raises(EvaluationError):
            db.undo()
        assert db.is_possible("~A1")
        db.insert("A2")  # the session still works after the failure
        assert db.clauses().fingerprint != fingerprint

    def test_undo_after_backend_switch_raises(self):
        # Snapshots are representation-level values; they do not carry
        # across with_backend, so the clone starts with nothing to undo.
        db = IncompleteDatabase.over(3)
        db.insert("A1")
        clone = db.with_backend("instance")
        assert clone.history == db.history
        with pytest.raises(EvaluationError):
            clone.undo()


class TestBackendSwitching:
    def test_switch_preserves_information_both_ways(self):
        db = IncompleteDatabase.over(4)
        db.assert_("A1 | A2", "~A2 | A3")
        instance = db.with_backend("instance")
        assert instance.backend == "instance"
        assert instance.is_certain("A1 | A2")
        back = instance.with_backend("clausal")
        assert back.is_certain("A2 -> A3")
        assert back.worlds().worlds == db.worlds().worlds

    def test_switch_mid_session_then_continue_updating(self):
        db = IncompleteDatabase.over(3)
        db.insert("A1")
        flipped = db.with_backend("instance")
        flipped.insert("A2")
        assert flipped.is_certain("A1 & A2")
        # The original is untouched by updates on the clone.
        assert not db.is_certain("A2")

    def test_switch_registers_a_new_audited_session(self):
        trail = audit.enable()
        db = IncompleteDatabase.over(3)
        db.insert("A1")
        clone = db.with_backend("instance")
        clone.is_certain("A1")
        sessions = [r for r in trail if r["kind"] == "session"]
        assert len(sessions) == 2
        assert [s["backend"] for s in sessions] == ["clausal", "instance"]
        # The clone's session record carries the switched-in state, so the
        # concatenated trail replays end to end.
        assert audit.replay_audit(trail).ok


class TestAuditAcrossUndo:
    def test_undo_is_recorded_and_replay_converges(self):
        trail = audit.enable()
        db = IncompleteDatabase.over(4)
        db.insert("A1 | A2")
        db.insert("A3")
        db.undo()
        db.insert("A4")
        ops = [r["op"] for r in trail if r["kind"] == "op"]
        assert ops == ["apply", "apply", "undo", "apply"]
        report = audit.replay_audit(trail)
        assert report.ok, report.mismatches

    def test_rejected_undo_is_recorded_and_replays(self):
        trail = audit.enable()
        db = IncompleteDatabase.over(3)
        with pytest.raises(EvaluationError):
            db.undo()
        record = trail.records[-1]
        assert record["op"] == "undo"
        assert record["outcome"] == "rejected"
        assert record["error"] == "nothing to undo"
        assert audit.replay_audit(trail).ok

    def test_undo_restores_the_recorded_pre_fingerprint(self):
        trail = audit.enable()
        db = IncompleteDatabase.over(4)
        db.insert("A1")
        db.insert("A2")
        db.undo()
        ops = [r for r in trail if r["kind"] == "op"]
        # Undoing the second insert lands exactly on its pre fingerprint.
        assert ops[-1]["post"] == ops[1]["pre"]
        assert ops[-1]["post"] == audit.fingerprint_json(db.clauses().fingerprint)
