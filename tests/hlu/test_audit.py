"""Tests for repro.hlu.audit: recording, validation, and checked replay."""

import json

import pytest

from repro.errors import AuditError, EvaluationError, VocabularyError
from repro.hlu import audit
from repro.hlu.session import IncompleteDatabase


@pytest.fixture(autouse=True)
def clean_audit():
    audit.disable()
    yield
    audit.disable()


def _scripted_trail():
    """A trail exercising updates, queries, undo, and a rejection."""
    trail = audit.enable()
    db = IncompleteDatabase.over(5)
    db.assert_("~A1 | A3", "A1 | A4", "A4 | A5", "~A1 | ~A2 | ~A5")
    db.insert("A1 | A2")
    db.is_certain("A1 | A2")
    db.is_possible("~A1")
    db.undo()
    with pytest.raises(VocabularyError):
        db.insert("A9")  # unknown letter: rejected inside apply
    return trail, db


class TestRecording:
    def test_session_record_opens_the_trail(self):
        trail = audit.enable()
        IncompleteDatabase.over(3)
        assert len(trail) == 1
        record = trail.records[0]
        assert record["kind"] == "session"
        assert record["schema"] == audit.AUDIT_SCHEMA_VERSION
        assert record["backend"] == "clausal"
        assert len(record["letters"]) == 3

    def test_disabled_sessions_record_nothing(self):
        db = IncompleteDatabase.over(3)
        trail = audit.enable()
        db.insert("A1")  # created before enable, never attached
        assert len(trail) == 0

    def test_attach_audit_registers_late(self):
        db = IncompleteDatabase.over(3)
        db.insert("A1")
        trail = audit.enable()
        db.attach_audit()
        db.insert("A2")
        kinds = [record["kind"] for record in trail]
        assert kinds == ["session", "op"]
        # The session record captures the state at attach time.
        assert trail.records[0]["initial"] == ["A1"]

    def test_attach_audit_requires_enable(self):
        db = IncompleteDatabase.over(3)
        with pytest.raises(EvaluationError):
            db.attach_audit()

    def test_ops_carry_contiguous_seq_and_fingerprints(self):
        trail, _ = _scripted_trail()
        ops = [record for record in trail if record["kind"] == "op"]
        assert [record["seq"] for record in ops] == list(range(1, len(ops) + 1))
        for record in ops:
            assert set(record["pre"]) == {"n", "mask", "digest"}
            assert record["wall_ms"] >= 0

    def test_rejected_update_is_recorded_and_reraised(self):
        trail, _ = _scripted_trail()
        rejected = [r for r in trail if r.get("outcome") == "rejected"]
        assert len(rejected) == 1
        assert rejected[0]["op"] == "apply"
        assert "insert" in rejected[0]["args"]
        assert "error" in rejected[0]
        assert "post" not in rejected[0]

    def test_query_outcomes_are_true_false(self):
        trail, _ = _scripted_trail()
        outcomes = {
            record["op"]: record["outcome"]
            for record in trail
            if record["kind"] == "op" and record["op"].startswith("query")
        }
        assert outcomes == {"query_certain": "true", "query_possible": "true"}

    def test_inconsistent_outcome(self):
        # The outcome check is representational: an empty world set (or an
        # explicit empty clause) -- the instance backend makes it evident.
        trail = audit.enable()
        db = IncompleteDatabase.over(2, backend="instance")
        db.assert_("A1")
        db.assert_("~A1")
        assert trail.records[-1]["outcome"] == "inconsistent"

    def test_writer_appends_jsonl(self, tmp_path):
        path = tmp_path / "audit_test.jsonl"
        audit.enable(path)
        IncompleteDatabase.over(2).insert("A1")
        audit.disable()
        audit.enable(path)  # append-only: a second segment accumulates
        IncompleteDatabase.over(2).insert("A2")
        audit.disable()
        lines = path.read_text().splitlines()
        assert len(lines) == 4
        assert all(isinstance(json.loads(line), dict) for line in lines)


class TestReadValidate:
    def test_round_trip_through_file(self, tmp_path):
        trail, _ = _scripted_trail()
        path = tmp_path / "audit_trail.jsonl"
        trail.save(path)
        records = audit.read_audit(path)
        assert records == trail.records
        assert audit.validate_audit(records) == []

    def test_schema_drift_raises(self):
        trail, _ = _scripted_trail()
        records = list(trail.records)
        records[2] = dict(records[2], schema=99)
        with pytest.raises(AuditError):
            audit.read_audit(records)

    def test_bad_json_line_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"schema": 1, "kind": "session"}\nnot json\n')
        with pytest.raises(AuditError):
            audit.read_audit(path)

    def test_validate_catches_seq_gap(self):
        trail, _ = _scripted_trail()
        records = [dict(record) for record in trail.records]
        for record in records:
            if record["kind"] == "op" and record["seq"] == 2:
                record["seq"] = 5
        assert any("seq" in problem for problem in audit.validate_audit(records))

    def test_validate_catches_orphan_op_and_unknown_kind(self):
        trail, _ = _scripted_trail()
        op = next(r for r in trail.records if r["kind"] == "op")
        orphan = dict(op, session="s0-99")
        assert audit.validate_audit([orphan])
        assert audit.validate_audit([{"schema": 1, "kind": "mystery"}])


class TestReplay:
    def test_replay_reproduces_the_whole_trajectory(self):
        trail, _ = _scripted_trail()
        report = audit.replay_audit(trail)
        assert report.ok
        assert report.sessions == 1
        assert report.ops == len(trail) - 1

    def test_replay_reproduces_final_fingerprint_exactly(self):
        trail, db = _scripted_trail()
        # The last op record's post fingerprint is the live session's.
        posts = [r["post"] for r in trail if r.get("post") is not None]
        assert posts[-1] == audit.fingerprint_json(db.clauses().fingerprint)
        assert audit.replay_audit(trail).ok

    def test_tampered_post_fingerprint_is_detected(self):
        trail, _ = _scripted_trail()
        records = [dict(record) for record in trail.records]
        for record in records:
            if record.get("post") is not None:
                record["post"] = dict(record["post"], digest="00" * 8)
                break
        report = audit.replay_audit(records)
        assert not report.ok
        assert any("post fingerprint" in m for m in report.mismatches)

    def test_forged_query_outcome_is_detected(self):
        trail, _ = _scripted_trail()
        records = [dict(record) for record in trail.records]
        for record in records:
            if record.get("op") == "query_certain":
                record["outcome"] = "false"
        report = audit.replay_audit(records)
        assert any("query_certain" in m for m in report.mismatches)

    def test_replay_covers_instance_backend_and_constraints(self):
        trail = audit.enable()
        db = IncompleteDatabase.over(
            3, constraints=["A1 -> A2"], backend="instance",
            enforce_constraints=True,
        )
        db.insert("A1")
        db.is_certain("A2")
        assert audit.replay_audit(trail).ok

    def test_replay_does_not_append_to_the_active_trail(self):
        trail, _ = _scripted_trail()
        before = len(trail)
        audit.replay_audit(trail)
        assert len(trail) == before
        assert audit.is_enabled()

    def test_structurally_invalid_trail_refuses_to_replay(self):
        trail, _ = _scripted_trail()
        records = [dict(record) for record in trail.records][1:]  # drop session
        with pytest.raises(AuditError):
            audit.replay_audit(records)
