"""Tests for session snapshots / undo (repro.hlu.session)."""

import pytest

from repro.errors import EvaluationError
from repro.hlu.session import IncompleteDatabase


class TestUndo:
    def test_undo_reverts_one_update(self):
        db = IncompleteDatabase.over(3)
        db.assert_("A1")
        before = db.state
        db.insert("~A1")
        db.undo()
        assert db.state == before
        assert len(db.history) == 1

    def test_undo_reverts_destructive_insert(self):
        # insert destroys information; undo must still restore it exactly.
        db = IncompleteDatabase.over(3)
        db.assert_("A1 & A2")
        db.insert("~A1")
        assert not db.is_certain("A1")
        db.undo()
        assert db.is_certain("A1")

    def test_undo_chain_to_initial_state(self):
        db = IncompleteDatabase.over(3)
        initial = db.state
        db.assert_("A1").insert("A2").clear("A1")
        db.undo()
        db.undo()
        db.undo()
        assert db.state == initial
        assert db.history == ()

    def test_undo_past_beginning_raises(self):
        db = IncompleteDatabase.over(3)
        with pytest.raises(EvaluationError, match="nothing to undo"):
            db.undo()

    def test_redo_by_reapplying_history_pattern(self):
        db = IncompleteDatabase.over(3)
        db.insert("A1")
        update = db.history[-1]
        db.undo()
        db.apply(update)
        assert db.is_certain("A1")

    def test_undo_on_instance_backend(self):
        db = IncompleteDatabase.over(3, backend="instance")
        db.insert("A1 | A2")
        before = db.worlds()
        db.delete("A1")
        db.undo()
        assert db.worlds() == before

    def test_backend_switch_clears_snapshots(self):
        db = IncompleteDatabase.over(3)
        db.insert("A1")
        moved = db.with_backend("instance")
        with pytest.raises(EvaluationError):
            moved.undo()
        # The original still undoes fine.
        db.undo()
        assert not db.is_certain("A1")
