"""Theorem 3.1.4: the BLU-defined HLU updates vs Definition 1.4.5.

The theorem claims HLU-insert, HLU-delete, and HLU-modify (as BLU
programs, run in BLU--I) are logically equivalent to the
nondeterministic-morphism updates of Definition 1.4.5.

Reproduction verdict (recorded in EXPERIMENTS.md, experiment E12):

* **insert** and **delete**: equivalence holds, verified exhaustively on
  small schemas and on random formulas.
* **modify**: equivalence holds when the precondition is a single literal
  (in particular for the motivating complete-information case of
  Definition 1.3.3(c)).  For multi-literal or disjunctive preconditions
  the two definitions genuinely differ: the 1.4.5 reading applies each
  deterministic ``modify[Psi1, Psi2]`` component world-by-world (worlds
  failing a component's precondition survive unchanged under *that*
  component, and deleted-but-not-reinserted letters are forced false),
  whereas the BLU program rewrites *every* precondition world and leaves
  such letters unknown.  Both counterexample classes are pinned below.
"""

import itertools

import pytest

from repro.blu.instance_impl import InstanceImplementation
from repro.db.instances import WorldSet
from repro.db.literal_base import delete_update, insert_update, modify_update
from repro.hlu import language
from repro.hlu.interpreter import run_update
from repro.logic.propositions import Vocabulary

VOCAB = Vocabulary.standard(3)
IMPL = InstanceImplementation(VOCAB)

FORMULAS = [
    "A1",
    "~A2",
    "A1 | A2",
    "A1 & A3",
    "A1 <-> A2",
    "A1 | ~A1",
    "(A1 | A2) & (A1 | ~A2)",
]

# Every subset of worlds over a 3-letter schema, sampled coarsely for the
# exhaustive checks (full 256-subset sweep for insert only).
SOME_STATES = [
    WorldSet(VOCAB, frozenset(ws))
    for ws in [
        (),
        (0,),
        (0b111,),
        (0, 1, 2),
        (3, 5, 6),
        (0, 7),
        tuple(range(8)),
        (1, 2, 4),
    ]
]


class TestInsertEquivalence:
    @pytest.mark.parametrize("text", FORMULAS)
    def test_on_sampled_states(self, text):
        reference = insert_update(VOCAB, [text])
        for state in SOME_STATES:
            assert run_update(IMPL, state, language.insert(text)) == (
                reference.apply_world_set(state)
            )

    def test_exhaustive_single_formula(self):
        reference = insert_update(VOCAB, ["A1 | A2"])
        for bits in range(256):
            state = WorldSet(VOCAB, (w for w in range(8) if bits >> w & 1))
            assert run_update(IMPL, state, language.insert("A1 | A2")) == (
                reference.apply_world_set(state)
            )


class TestDeleteEquivalence:
    @pytest.mark.parametrize("text", FORMULAS)
    def test_on_sampled_states(self, text):
        reference = delete_update(VOCAB, [text])
        for state in SOME_STATES:
            assert run_update(IMPL, state, language.delete(text)) == (
                reference.apply_world_set(state)
            )


class TestModifyEquivalence:
    LITERAL_PRECONDITIONS = ["A1", "~A2", "A3"]
    POSTCONDITIONS = ["A1", "A2 | A3", "A2 <-> A3", "~A2", "A2 & A3"]

    @pytest.mark.parametrize(
        "pre,post",
        list(itertools.product(LITERAL_PRECONDITIONS, POSTCONDITIONS)),
    )
    def test_literal_precondition_equivalence(self, pre, post):
        reference = modify_update(VOCAB, [pre], [post])
        for state in SOME_STATES:
            assert run_update(IMPL, state, language.modify(pre, post)) == (
                reference.apply_world_set(state)
            )

    def test_known_divergence_conjunctive_precondition(self):
        """modify[A1 & A3, A1]: 1.4.5 forces A3 false afterwards; the BLU
        program leaves A3 unknown.  Pin both behaviours."""
        state = WorldSet(VOCAB, {0b101})  # A1, A3 true; A2 false
        reference = modify_update(VOCAB, ["A1 & A3"], ["A1"]).apply_world_set(state)
        via_blu = run_update(IMPL, state, language.modify("A1 & A3", "A1"))
        assert reference == WorldSet(VOCAB, {0b001})           # A1, ~A2, ~A3
        assert via_blu == WorldSet(VOCAB, {0b001, 0b101})      # A3 unknown
        assert reference != via_blu

    def test_known_divergence_disjunctive_precondition(self):
        """modify[A1 | A2, A1]: under 1.4.5, a world can survive unchanged
        through a component whose specific base it fails; the BLU program
        rewrites every (A1 | A2)-world."""
        state = WorldSet(VOCAB, {0b010})  # A2 true only
        reference = modify_update(VOCAB, ["A1 | A2"], ["A1"]).apply_world_set(state)
        via_blu = run_update(IMPL, state, language.modify("A1 | A2", "A1"))
        # The identity components of 1.4.5 keep the original world.
        assert 0b010 in reference
        assert 0b010 not in via_blu

    def test_divergent_results_agree_on_postcondition(self):
        """Even where they differ, both make the postcondition certain on
        the rewritten worlds and preserve the untouched branch."""
        from repro.logic.parser import parse_formula

        state = WorldSet(VOCAB, {0b101, 0b000})
        via_blu = run_update(IMPL, state, language.modify("A1 & A3", "A1"))
        # The ~precondition world 000 survives untouched.
        assert 0b000 in via_blu
        # All other worlds satisfy the postcondition.
        rewritten = WorldSet(VOCAB, via_blu.worlds - {0b000})
        assert rewritten.satisfies_everywhere(parse_formula("A1"))
