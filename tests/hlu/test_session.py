"""Tests for the IncompleteDatabase session API (repro.hlu.session)."""

import pytest

from repro.db.instances import WorldSet
from repro.db.schema import DbSchema
from repro.errors import EvaluationError
from repro.hlu import language
from repro.hlu.session import IncompleteDatabase
from repro.logic.clauses import ClauseSet
from repro.logic.propositions import Vocabulary


class TestConstruction:
    def test_over_defaults_to_clausal_total_ignorance(self):
        db = IncompleteDatabase.over(3)
        assert db.backend == "clausal"
        assert db.state == ClauseSet.tautology(db.vocabulary)
        assert db.is_consistent()

    def test_instance_backend(self):
        db = IncompleteDatabase.over(3, backend="instance")
        assert db.state == WorldSet.total(db.vocabulary)

    def test_unknown_backend_rejected(self):
        with pytest.raises(EvaluationError, match="backend"):
            IncompleteDatabase.over(3, backend="prolog")

    def test_initial_state_must_be_well_sorted(self):
        schema = DbSchema.of(3)
        with pytest.raises(EvaluationError):
            IncompleteDatabase(schema, initial=WorldSet.total(Vocabulary.standard(3)))
        # (clausal backend expects a ClauseSet)

    def test_named_letters(self):
        db = IncompleteDatabase.over(["Rain", "Wet"])
        db.assert_("Rain -> Wet")
        assert db.is_certain("Rain -> Wet")


class TestUpdateFlow:
    def test_assert_is_monotone(self):
        db = IncompleteDatabase.over(3, backend="instance")
        before = db.worlds()
        db.assert_("A1 | A2")
        assert db.worlds() <= before

    def test_insert_overrides_contradictory_knowledge(self):
        db = IncompleteDatabase.over(3)
        db.assert_("A1")
        db.insert("~A1")
        assert db.is_certain("~A1")
        assert db.is_consistent()

    def test_assert_of_contradictory_knowledge_is_inconsistent(self):
        db = IncompleteDatabase.over(3)
        db.assert_("A1")
        db.assert_("~A1")
        assert not db.is_consistent()

    def test_delete_makes_formula_false(self):
        db = IncompleteDatabase.over(3)
        db.assert_("A1 & A2")
        db.delete("A1")
        assert db.is_certain("~A1")
        assert db.is_certain("A2")  # untouched knowledge survives

    def test_clear_forgets(self):
        db = IncompleteDatabase.over(3)
        db.assert_("A1", "A2")
        db.clear("A1")
        assert db.is_possible("A1") and db.is_possible("~A1")
        assert db.is_certain("A2")

    def test_modify_moves_information(self):
        db = IncompleteDatabase.over(3)
        db.assert_("A1", "~A2")
        db.modify("A1", "A2")
        assert db.is_certain("~A1") and db.is_certain("A2")

    def test_where_splits(self):
        db = IncompleteDatabase.over(3)
        db.where("A3", language.insert("A1"))
        assert db.is_certain("A3 -> A1")
        assert not db.is_certain("A1")

    def test_where_with_else_branch(self):
        db = IncompleteDatabase.over(3)
        db.where("A3", language.insert("A1"), language.insert("A2"))
        assert db.is_certain("A3 -> A1")
        assert db.is_certain("~A3 -> A2")

    def test_history_records_updates(self):
        db = IncompleteDatabase.over(3)
        db.assert_("A1").insert("A2").clear("A1")
        assert [type(u).__name__ for u in db.history] == [
            "Assert",
            "Insert",
            "Clear",
        ]

    def test_fluent_chaining(self):
        db = IncompleteDatabase.over(2).assert_("A1").insert("A2")
        assert db.is_certain("A1 & A2")


class TestQueries:
    def test_certain_vs_possible(self):
        db = IncompleteDatabase.over(3)
        db.assert_("A1 | A2")
        assert not db.is_certain("A1")
        assert db.is_possible("A1")
        assert db.is_certain("A1 | A2")
        assert not db.is_possible("~A1 & ~A2")

    def test_certain_literals(self):
        db = IncompleteDatabase.over(3)
        db.assert_("A1", "~A3")
        literals = db.certain_literals()
        assert "A1" in literals and "~A3" in literals
        assert "A2" not in literals and "~A2" not in literals

    def test_formula_objects_accepted(self):
        from repro.logic.formula import var

        db = IncompleteDatabase.over(3)
        db.assert_(var("A1"))
        assert db.is_certain(var("A1"))


class TestBackendsAgree:
    SCRIPT = [
        ("assert_", ("A1 | A2", "~A2 | A3")),
        ("insert", ("A2 | A3",)),
        ("delete", ("A1 & A3",)),
        ("clear", ("A2",)),
        ("modify", ("A3", "A1")),
    ]

    def test_full_script_agreement(self):
        clausal = IncompleteDatabase.over(4, backend="clausal")
        instance = IncompleteDatabase.over(4, backend="instance")
        for method, args in self.SCRIPT:
            getattr(clausal, method)(*args)
            getattr(instance, method)(*args)
            assert clausal.worlds() == instance.worlds(), method

    def test_with_backend_roundtrip(self):
        db = IncompleteDatabase.over(3).assert_("A1 | A2").insert("A3")
        moved = db.with_backend("instance")
        assert moved.worlds() == db.worlds()
        back = moved.with_backend("clausal")
        assert back.worlds() == db.worlds()
        assert moved.history == db.history


class TestConstraints:
    def test_enforcement_filters_illegal_worlds(self):
        db = IncompleteDatabase.over(
            2, constraints=["A1 -> A2"], enforce_constraints=True
        )
        db.insert("A1")
        assert db.is_certain("A2")

    def test_without_enforcement_constraints_ignored(self):
        db = IncompleteDatabase.over(
            2, constraints=["A1 -> A2"], enforce_constraints=False
        )
        db.insert("A1")
        assert not db.is_certain("A2")

    def test_enforcement_on_instance_backend(self):
        db = IncompleteDatabase.over(
            2,
            constraints=["~A1 | ~A2"],
            backend="instance",
            enforce_constraints=True,
        )
        db.insert("A1")
        assert db.is_certain("~A2")

    def test_update_violating_constraints_empties_state(self):
        db = IncompleteDatabase.over(
            2, constraints=["~A1"], enforce_constraints=True
        )
        db.insert("A1")
        assert not db.is_consistent()


class TestCanonicalClauses:
    def test_equivalent_sessions_have_equal_canonical_form(self):
        left = IncompleteDatabase.over(3).assert_("A1 -> A2")
        # Same theory, split across A3 -- subsumption alone cannot merge
        # these two clauses, so the raw states differ.
        right = IncompleteDatabase.over(3).assert_(
            "~A1 | A2 | A3", "~A1 | A2 | ~A3"
        )
        assert left.state != right.state  # different presentations
        assert left.canonical_clauses() == right.canonical_clauses()

    def test_canonical_form_across_backends(self):
        clausal = IncompleteDatabase.over(3).insert("A1 | A2")
        instance = clausal.with_backend("instance")
        assert clausal.canonical_clauses() == instance.canonical_clauses()

    def test_inconsistent_state_canonicalises_to_empty_clause(self):
        db = IncompleteDatabase.over(2).assert_("A1", "~A1")
        assert db.canonical_clauses().has_empty_clause


class TestIncrementalWiring:
    """The session layer feeds state transitions to the incremental
    closure engine; results must be bit-identical to scratch runs."""

    def test_update_sequence_matches_scratch(self):
        from repro.logic import incremental

        def drive():
            db = IncompleteDatabase.over(5)
            db.assert_("~A1 | A3", "A1 | A4", "A4 | A5", "~A1 | ~A2 | ~A5")
            db.insert("A1 | A2")
            db.delete("A4")
            db.undo()
            db.clear("A5")
            return db.clauses(), db.canonical_clauses()

        scratch_state, scratch_canonical = drive()
        incremental.enable_incremental()
        try:
            inc_state, inc_canonical = drive()
            stats = incremental.incremental_stats()
        finally:
            incremental.disable_incremental()
            incremental.reset_incremental()
        assert inc_state == scratch_state
        assert inc_canonical == scratch_canonical
        assert stats["lineages"] >= 1

    def test_instance_backend_transitions_are_skipped(self):
        from repro.logic import incremental

        incremental.enable_incremental()
        try:
            db = IncompleteDatabase.over(3, backend="instance")
            db.insert("A1")
            db.undo()
            assert db.is_certain("A1") is False
        finally:
            incremental.disable_incremental()
            incremental.reset_incremental()

    def test_delta_size_observed_when_obs_enabled(self):
        from repro.logic import incremental
        from repro.obs import core as obs

        obs.enable()
        obs.reset()
        try:
            db = IncompleteDatabase.over(3)
            db.assert_("A1 | A2")
            histogram = obs.counters().histogram("hlu.update.delta_size")
            assert histogram is not None
        finally:
            obs.reset()
            obs.disable()
