"""Tests for session persistence (repro.hlu.persistence)."""

import pytest

from repro.errors import ParseError
from repro.hlu import language
from repro.hlu.persistence import dump_session, load_session
from repro.hlu.session import IncompleteDatabase


def sample_session() -> IncompleteDatabase:
    db = IncompleteDatabase.over(4, constraints=["A1 -> A2"])
    db.assert_("A1 | A3")
    db.insert("A4")
    db.where("A3", language.delete("A4"))
    return db


class TestDump:
    def test_header_and_sections(self):
        text = dump_session(sample_session())
        assert text.startswith("#repro-session v1\n")
        assert "vocabulary A1 A2 A3 A4" in text
        assert "backend clausal" in text
        assert "constraint (A1 -> A2)" in text
        assert "clause " in text
        assert "update (where {A3} (delete {A4}))" in text

    def test_dump_is_deterministic(self):
        assert dump_session(sample_session()) == dump_session(sample_session())


class TestRoundTrip:
    def test_state_preserved(self):
        original = sample_session()
        restored = load_session(dump_session(original))
        assert restored.worlds() == original.worlds()
        assert restored.vocabulary == original.vocabulary
        assert restored.schema.constraints == original.schema.constraints

    def test_history_preserved(self):
        original = sample_session()
        restored = load_session(dump_session(original))
        assert restored.history == original.history

    def test_queries_agree_after_restore(self):
        original = sample_session()
        restored = load_session(dump_session(original))
        for query in ("A4", "A3 -> ~A4", "A1 | A3", "A2"):
            assert restored.is_certain(query) == original.is_certain(query)
            assert restored.is_possible(query) == original.is_possible(query)

    def test_instance_backend_round_trips_via_clauses(self):
        original = sample_session().with_backend("instance")
        restored = load_session(dump_session(original))
        assert restored.backend == "instance"
        assert restored.worlds() == original.worlds()

    def test_restored_session_is_live(self):
        restored = load_session(dump_session(sample_session()))
        restored.insert("~A1")
        assert restored.is_certain("~A1")

    def test_saved_session_is_a_replayable_script(self):
        # The update lines re-run from scratch give the same state.
        original = sample_session()
        updates = [u for u in original.history]
        replayed = IncompleteDatabase.over(4, constraints=["A1 -> A2"])
        for update in updates:
            replayed.apply(update)
        assert replayed.worlds() == original.worlds()


class TestErrors:
    def test_missing_header(self):
        with pytest.raises(ParseError, match="session file"):
            load_session("vocabulary A1\n")

    def test_missing_vocabulary(self):
        with pytest.raises(ParseError, match="vocabulary"):
            load_session("#repro-session v1\nbackend clausal\n")

    def test_unknown_line_kind(self):
        with pytest.raises(ParseError, match="unknown session line"):
            load_session("#repro-session v1\nvocabulary A1\nfrobnicate x\n")

    def test_comments_and_blank_lines_tolerated(self):
        text = (
            "#repro-session v1\n"
            "; a comment\n"
            "\n"
            "vocabulary A1 A2\n"
            "clause A1\n"
        )
        db = load_session(text)
        assert db.is_certain("A1")


class TestBackendValidation:
    def test_unknown_backend_rejected_with_valid_list(self):
        # Regression: unknown backend values were silently treated as
        # clausal; they must fail loudly, naming the valid backends.
        text = dump_session(sample_session()).replace(
            "backend clausal", "backend postgres"
        )
        with pytest.raises(ParseError, match="unknown backend 'postgres'") as info:
            load_session(text)
        assert "clausal" in str(info.value)
        assert "instance" in str(info.value)

    def test_every_declared_backend_loads(self):
        from repro.hlu.session import BACKENDS

        base = dump_session(sample_session())
        for backend in BACKENDS:
            restored = load_session(
                base.replace("backend clausal", f"backend {backend}")
            )
            assert restored.backend == backend


class TestRestoreHistory:
    def test_load_goes_through_the_public_api(self):
        # Regression: load_session used to poke session._history
        # directly; the public API also clears undo snapshots, so a
        # freshly restored session has nothing to undo.
        from repro.errors import EvaluationError

        restored = load_session(dump_session(sample_session()))
        assert len(restored.history) == 3
        with pytest.raises(EvaluationError, match="nothing to undo"):
            restored.undo()

    def test_restore_history_rejects_non_updates(self):
        from repro.errors import EvaluationError

        db = IncompleteDatabase.over(3)
        with pytest.raises(EvaluationError, match="HLU updates"):
            db.restore_history(["(insert {A1})"])  # strings, not Updates

    def test_restore_history_is_audited_and_replayable(self):
        from repro.hlu import audit

        audit.disable()
        trail = audit.enable()
        try:
            db = IncompleteDatabase.over(3)
            db.insert("A1")
            db.restore_history(db.history)
            ops = [r["op"] for r in trail if r["kind"] == "op"]
            assert ops == ["apply", "restore_history"]
            replay = audit.replay_audit(trail)
            assert replay.ok, replay.render()
        finally:
            audit.disable()
