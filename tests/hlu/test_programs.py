"""Tests for the simple-HLU defining programs (Definition 3.1.2)."""

from repro.blu.syntax import Sort
from repro.hlu.programs import (
    HLU_ASSERT,
    HLU_CLEAR,
    HLU_DELETE,
    HLU_INSERT,
    HLU_MODIFY,
    IDENTITY,
    SIMPLE_HLU_PROGRAMS,
)


class TestShapes:
    def test_all_programs_well_formed(self):
        for name, program in SIMPLE_HLU_PROGRAMS.items():
            assert program.parameters[0] == "s0", name
            assert program.body.sort is Sort.S, name

    def test_assert_source(self):
        assert str(HLU_ASSERT) == "(lambda (s0 s1) (assert s0 s1))"

    def test_clear_takes_mask_parameter(self):
        assert HLU_CLEAR.parameters == ("s0", "m1")
        assert str(HLU_CLEAR) == "(lambda (s0 m1) (mask s0 m1))"

    def test_insert_is_mask_then_assert(self):
        assert str(HLU_INSERT) == (
            "(lambda (s0 s1) (assert (mask s0 (genmask s1)) s1))"
        )

    def test_delete_is_mask_then_assert_complement(self):
        assert str(HLU_DELETE) == (
            "(lambda (s0 s1) (assert (mask s0 (genmask s1)) (complement s1)))"
        )

    def test_modify_arity_and_structure(self):
        assert HLU_MODIFY.parameters == ("s0", "s1", "s2")
        text = str(HLU_MODIFY)
        # The reconstruction: combine of (insert s2 of (delete s1 of the
        # s1-worlds)) with the untouched ~s1-worlds.
        assert text.startswith("(lambda (s0 s1 s2) (combine (assert (mask (assert (mask (assert s0 s1)")
        assert text.endswith("(assert s0 (complement s1))))")

    def test_identity_program(self):
        assert str(IDENTITY) == "(lambda (s0) s0)"

    def test_registry_is_complete(self):
        assert set(SIMPLE_HLU_PROGRAMS) == {
            "assert",
            "clear",
            "insert",
            "delete",
            "modify",
        }


class TestMaskAssertParadigm:
    """Every non-trivial update is a mask followed by an assert (Section 0)."""

    def test_insert_delete_modify_use_mask_and_assert(self):
        from repro.blu.sexpr import sexpr_atoms

        for name in ("insert", "delete", "modify"):
            atoms = sexpr_atoms(SIMPLE_HLU_PROGRAMS[name].body.to_sexpr())
            assert "mask" in atoms, name
            assert "assert" in atoms, name
            assert "genmask" in atoms, name

    def test_genmask_only_applied_to_user_parameters(self):
        """Section 4: genmask (and complement) take only user-supplied
        parameters, never the system state s0 -- the inherently hard
        operations stay on small arguments."""
        from repro.blu.syntax import Apply, Variable

        def check(term):
            if isinstance(term, Apply):
                if term.operator in ("genmask", "complement"):
                    argument = term.arguments[0]
                    assert isinstance(argument, Variable)
                    assert argument.name != "s0"
                for sub in term.arguments:
                    check(sub)

        for program in SIMPLE_HLU_PROGRAMS.values():
            check(program.body)
