"""Tests for the where macros (Section 3.2)."""


from repro.blu.parser import parse_program, parse_term
from repro.hlu.macros import arglist, atomappend, substitute_term, where1, where2
from repro.hlu.programs import HLU_DELETE, HLU_INSERT, HLU_MODIFY, IDENTITY


class TestSupportFunctions:
    def test_atomappend(self):
        # Definition 3.2.2(a).
        assert atomappend(".0", ["s1", "s2"]) == ("s1.0", "s2.0")
        assert atomappend(".1", []) == ()

    def test_arglist(self):
        # Definition 3.2.2(b).
        assert arglist(HLU_INSERT) == ("s0", "s1")
        assert arglist(HLU_MODIFY) == ("s0", "s1", "s2")

    def test_substitute_term(self):
        term = parse_term("(assert s0 s1)")
        out = substitute_term(term, {"s0": parse_term("(complement s2)")})
        assert str(out) == "(assert (complement s2) s1)"

    def test_substitute_is_simultaneous(self):
        term = parse_term("(assert s0 s1)")
        out = substitute_term(
            term,
            {"s0": parse_term("s1"), "s1": parse_term("s0")},
        )
        assert str(out) == "(assert s1 s0)"


class TestWhere1:
    def test_example_325_expansion(self):
        """The paper's reduced expansion of (where s1 (insert s1.0))."""
        expanded = where1(HLU_INSERT)
        assert expanded.parameters == ("s0", "s1", "s1.0")
        assert str(expanded) == (
            "(lambda (s0 s1 s1.0) "
            "(combine "
            "(assert (mask (assert s0 s1) (genmask s1.0)) s1.0) "
            "(assert s0 (complement s1))))"
        )

    def test_identity_branch_preserves_outside_worlds(self):
        # where1's second branch must be (assert s0 (complement s1)).
        expanded = where1(HLU_DELETE)
        text = str(expanded)
        assert "(assert s0 (complement s1))" in text

    def test_where1_of_identity_is_split_and_recombine(self):
        expanded = where1(IDENTITY)
        assert str(expanded) == (
            "(lambda (s0 s1) "
            "(combine (assert s0 s1) (assert s0 (complement s1))))"
        )


class TestWhere2:
    def test_renaming_avoids_collisions(self):
        expanded = where2(HLU_INSERT, HLU_DELETE)
        assert expanded.parameters == ("s0", "s1", "s1.0", "s1.1")

    def test_branch_states(self):
        expanded = where2(HLU_INSERT, HLU_DELETE)
        text = str(expanded)
        # Then-branch runs on (assert s0 s1), else-branch on the complement.
        assert "(mask (assert s0 s1) (genmask s1.0))" in text
        assert "(mask (assert s0 (complement s1)) (genmask s1.1))" in text

    def test_modify_inside_where(self):
        expanded = where2(HLU_MODIFY, IDENTITY)
        assert expanded.parameters == ("s0", "s1", "s1.0", "s2.0")

    def test_nested_where_expansion(self):
        inner = where1(HLU_INSERT)  # params (s0 s1 s1.0)
        outer = where2(inner, IDENTITY)
        assert outer.parameters == ("s0", "s1", "s1.0", "s1.0.0")

    def test_result_is_valid_program(self):
        # Round-trips through the parser (well-sorted, closed).
        expanded = where2(HLU_INSERT, HLU_DELETE)
        assert parse_program(str(expanded)) == expanded

    def test_renaming_is_collision_free_even_for_dotted_names(self):
        # Programs whose parameters already carry macro suffixes (from a
        # previous expansion) must still rename apart.
        p0 = parse_program("(lambda (s0 s1.1) (assert s0 s1.1))")
        p1 = parse_program("(lambda (s0 s1) (assert s0 s1))")
        out = where2(p0, p1)
        assert out.parameters == ("s0", "s1", "s1.1.0", "s1.1")
        assert len(set(out.parameters)) == len(out.parameters)


class TestSemanticsOfExpansion:
    """The expanded program must equal split-update-recombine."""

    def test_where_equals_manual_split(self):
        from repro.blu.instance_impl import InstanceImplementation
        from repro.db.instances import WorldSet
        from repro.logic.propositions import Vocabulary

        vocab = Vocabulary.standard(3)
        impl = InstanceImplementation(vocab)
        state = WorldSet.from_texts(vocab, ["A1 | A3"])
        condition = WorldSet.from_texts(vocab, ["A3"])
        payload = WorldSet.from_texts(vocab, ["A2"])

        expanded = where1(HLU_INSERT)
        via_macro = impl.run(expanded, state, condition, payload)

        inside = impl.run(HLU_INSERT, state.intersection(condition), payload)
        outside = state.intersection(condition.complement())
        assert via_macro == inside.union(outside)
