"""Tests for the textual HLU surface syntax (repro.hlu.surface)."""

import pytest

from repro.errors import ParseError
from repro.hlu import language
from repro.hlu.session import IncompleteDatabase
from repro.hlu.surface import parse_update, parse_updates
from repro.logic.parser import parse_formula


class TestSimpleForms:
    def test_assert(self):
        update = parse_update("(assert {A1 | A2, ~A3})")
        assert isinstance(update, language.Assert)
        assert update.arguments[0].formulas == (
            parse_formula("A1 | A2"),
            parse_formula("~A3"),
        )

    def test_mask_is_clear(self):
        update = parse_update("(mask {A1, A2})")
        assert isinstance(update, language.Clear)
        assert update.arguments[0].names == frozenset({"A1", "A2"})

    def test_insert_and_delete(self):
        assert isinstance(parse_update("(insert {A1})"), language.Insert)
        assert isinstance(parse_update("(delete {A1 & A2})"), language.Delete)

    def test_modify(self):
        update = parse_update("(modify {A1} {A2 | A3})")
        assert isinstance(update, language.Modify)
        assert update.arguments[0].formulas == (parse_formula("A1"),)
        assert update.arguments[1].formulas == (parse_formula("A2 | A3"),)

    def test_parenthesised_formulas_with_commas_in_scope(self):
        update = parse_update("(assert {(A1 -> A2) & A3, A4})")
        assert len(update.arguments[0].formulas) == 2


class TestWhereForms:
    def test_where_one_branch(self):
        update = parse_update("(where {A5} (insert {A1 | A2}))")
        assert isinstance(update, language.Where)
        assert update.otherwise is None
        assert isinstance(update.then, language.Insert)

    def test_where_two_branches(self):
        update = parse_update("(where {A5} (insert {A1}) (delete {A2}))")
        assert isinstance(update.otherwise, language.Delete)

    def test_nested_where(self):
        update = parse_update("(where {A1} (where {A2} (insert {A3})))")
        assert isinstance(update.then, language.Where)

    def test_parsed_program_equals_constructed(self):
        parsed = parse_update("(where {A5} (insert {A1 | A2}))")
        built = language.where("A5", language.insert("A1 | A2"))
        assert parsed.compile()[0] == built.compile()[0]


class TestScripts:
    def test_parse_updates_sequence(self):
        script = """
        ; set up the paper's state, then run Example 3.2.5
        (assert {~A1 | A3, A1 | A4, A4 | A5, ~A1 | ~A2 | ~A5})
        (where {A5} (insert {A1 | A2}))
        """
        updates = parse_updates(script)
        assert [type(u).__name__ for u in updates] == ["Assert", "Where"]

    def test_session_run_executes_script(self):
        db = IncompleteDatabase.over(5)
        db.run(
            "(assert {~A1 | A3, A1 | A4, A4 | A5, ~A1 | ~A2 | ~A5})"
            "(insert {A1 | A2})"
        )
        assert db.is_certain("A1 | A2")
        assert len(db.history) == 2


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "(insert)",
            "(insert A1)",            # missing braces
            "(frobnicate {A1})",
            "(insert {A1)",           # unterminated brace
            "(insert {A1}",           # unterminated paren
            "(insert {A1}) trailing",
            "(mask {A1 | A2})",       # masks take names, not formulas
            "(where {A1})",           # missing branch
        ],
    )
    def test_malformed_programs_raise(self, text):
        with pytest.raises(ParseError):
            parse_update(text)

    def test_stray_close_brace(self):
        with pytest.raises(ParseError, match="'}'"):
            parse_update("(insert }A1{)")
