"""End-to-end reproduction of the paper's worked examples (E6, E7, E8).

* Example 3.1.5: insert {A1 | A2} into Phi at the clause level.
* Example 3.2.5: (where {A5} (insert {A1 | A2})) -- expansion and result.
* Example 1.4.6 / Remark 1.4.7 surface behaviour through HLU.
"""


from repro.blu.clausal_impl import ClausalImplementation, clausal_combine
from repro.db.instances import WorldSet
from repro.hlu import language
from repro.hlu.session import IncompleteDatabase
from repro.logic.clauses import ClauseSet
from repro.logic.propositions import Vocabulary
from repro.logic.semantics import models_of_clauses

VOCAB = Vocabulary.standard(5)

PAPER_STATE = ["~A1 | A3", "A1 | A4", "A4 | A5", "~A1 | ~A2 | ~A5"]


def fresh_db(backend="clausal") -> IncompleteDatabase:
    db = IncompleteDatabase.over(5, backend=backend)
    db.assert_(*PAPER_STATE)
    return db


class TestExample315:
    """insert {A1 | A2}: genmask = {A1, A2}; mask(Phi) = {A4|A5, A3|A4};
    final state = {A1|A2, A4|A5, A3|A4}."""

    def test_genmask_step(self):
        impl = ClausalImplementation(VOCAB)
        w = ClauseSet.from_strs(VOCAB, ["A1 | A2"])
        assert impl.op_genmask(w) == frozenset({0, 1})

    def test_mask_step(self):
        impl = ClausalImplementation(VOCAB)
        phi = ClauseSet.from_strs(VOCAB, PAPER_STATE)
        assert impl.op_mask(phi, frozenset({0, 1})) == ClauseSet.from_strs(
            VOCAB, ["A4 | A5", "A3 | A4"]
        )

    def test_final_state(self):
        db = fresh_db()
        db.insert("A1 | A2")
        assert db.state == ClauseSet.from_strs(
            VOCAB, ["A1 | A2", "A4 | A5", "A3 | A4"]
        )

    def test_instance_backend_agrees(self):
        clausal = fresh_db("clausal").insert("A1 | A2")
        instance = fresh_db("instance").insert("A1 | A2")
        assert clausal.worlds() == instance.worlds()


class TestExample325:
    """(where {A5} (insert {A1 | A2}))."""

    def test_macro_expansion_matches_paper(self):
        program, arguments = language.where("A5", language.insert("A1 | A2")).compile()
        assert str(program) == (
            "(lambda (s0 s1 s1.0) "
            "(combine "
            "(assert (mask (assert s0 s1) (genmask s1.0)) s1.0) "
            "(assert s0 (complement s1))))"
        )
        assert len(arguments) == 2  # condition {A5} and payload {A1 | A2}

    def test_inside_branch_intermediate(self):
        # (mask (Phi u {A5}) {A1, A2}) = {A4|A5, A3|A4, A5}; asserting
        # {A1|A2} gives the paper's four-clause branch.
        impl = ClausalImplementation(VOCAB)
        phi = ClauseSet.from_strs(VOCAB, PAPER_STATE)
        with_a5 = impl.op_assert(phi, ClauseSet.from_strs(VOCAB, ["A5"]))
        masked = impl.op_mask(with_a5, frozenset({0, 1}))
        assert masked == ClauseSet.from_strs(VOCAB, ["A4 | A5", "A3 | A4", "A5"]).reduce()
        inside = impl.op_assert(masked, ClauseSet.from_strs(VOCAB, ["A1 | A2"]))
        # Note: {A4 | A5} is subsumed-out once A5 is certain.
        assert models_of_clauses(inside) == models_of_clauses(
            ClauseSet.from_strs(VOCAB, ["A4 | A5", "A3 | A4", "A5", "A1 | A2"])
        )

    def test_outside_branch(self):
        impl = ClausalImplementation(VOCAB)
        phi = ClauseSet.from_strs(VOCAB, PAPER_STATE)
        w = ClauseSet.from_strs(VOCAB, ["A5"])
        outside = impl.op_assert(phi, impl.op_complement(w))
        assert outside == phi.with_clause(frozenset({-5})).reduce()

    def test_combine_of_branches_16_products(self):
        # The paper leaves "the 16 clauses yielded by Algorithm 2.3.3" to
        # the reader: 4 inside-branch clauses x 4 state clauses.
        left = ClauseSet.from_strs(VOCAB, ["A4 | A5", "A3 | A4", "A5", "A1 | A2"])
        right = ClauseSet.from_strs(VOCAB, PAPER_STATE)
        raw = clausal_combine(left, right, simplify=False)
        assert len(raw) <= 16  # distinct, non-tautologous products
        assert models_of_clauses(raw) == (
            models_of_clauses(left) | models_of_clauses(right)
        )

    def test_full_update_backends_agree(self):
        update = language.where("A5", language.insert("A1 | A2"))
        clausal = fresh_db("clausal").apply(update)
        instance = fresh_db("instance").apply(update)
        assert clausal.worlds() == instance.worlds()

    def test_semantic_content_of_result(self):
        db = fresh_db().where("A5", language.insert("A1 | A2"))
        # Where A5 held, A1 | A2 is now certain.
        assert db.is_certain("A5 -> (A1 | A2)")
        # Where A5 failed, the old state survives, e.g. ~A1|A3 under ~A5.
        assert db.is_certain("~A5 -> (~A1 | A3)")
        # A5 itself is untouched as a split criterion: still open.
        assert db.is_possible("A5") and db.is_possible("~A5")


class TestRemark147:
    def test_inserting_tautology_is_identity_not_masking(self):
        db = fresh_db()
        before = db.state
        db.insert("A1 | ~A1")
        assert db.state == before

    def test_wilkins_contrast_masking_explicitly(self):
        # Masking A1 *is* expressible, just not by inserting a tautology.
        db = fresh_db()
        db.clear("A1")
        assert "A1" not in db.state.prop_names


class TestInsertSplitsWorlds:
    """Example 1.4.6 through the session: a complete DB becomes three
    possible worlds under insert {A1 | A2}."""

    def test_three_way_split(self):
        from repro.db.schema import DbSchema

        vocab = Vocabulary.standard(2)
        db = IncompleteDatabase(
            schema=DbSchema.of(2),
            backend="instance",
            initial=WorldSet.singleton(vocab, 0b00),
        )
        db.insert("A1 | A2")
        assert db.worlds() == WorldSet(vocab, {0b01, 0b10, 0b11})
