"""Property test: Update.__str__ round-trips through the surface parser.

Every update value prints in the paper's surface syntax; re-parsing the
printed form must yield a semantically identical update (same compiled
program and same argument values).
"""

from hypothesis import given, settings, strategies as st

from repro.hlu import language
from repro.hlu.surface import parse_update
from repro.logic.formula import And, Iff, Implies, Not, Or, Var

LETTERS = ("A1", "A2", "A3")

variables = st.sampled_from([Var(n) for n in LETTERS])
formulas = st.recursive(
    variables,
    lambda children: st.one_of(
        children.map(Not),
        st.tuples(children, children).map(And),
        st.tuples(children, children).map(Or),
        st.tuples(children, children).map(lambda p: Implies(*p)),
        st.tuples(children, children).map(lambda p: Iff(*p)),
    ),
    max_leaves=4,
)
formula_sets = st.lists(formulas, min_size=1, max_size=3)

simple_updates = st.one_of(
    formula_sets.map(language.Assert),
    formula_sets.map(language.Insert),
    formula_sets.map(language.Delete),
    st.sets(st.sampled_from(LETTERS), min_size=1, max_size=2).map(language.Clear),
    st.tuples(formula_sets, formula_sets).map(lambda p: language.Modify(*p)),
)

updates = st.one_of(
    simple_updates,
    st.tuples(formula_sets, simple_updates).map(
        lambda p: language.Where(p[0], p[1])
    ),
    st.tuples(formula_sets, simple_updates, simple_updates).map(
        lambda p: language.Where(p[0], p[1], p[2])
    ),
    # one level of nesting
    st.tuples(formula_sets, st.tuples(formula_sets, simple_updates)).map(
        lambda p: language.Where(p[0], language.Where(p[1][0], p[1][1]))
    ),
)


@given(updates)
@settings(max_examples=200, deadline=None)
def test_str_reparses_to_equal_update(update):
    reparsed = parse_update(str(update))
    assert reparsed == update


@given(updates)
@settings(max_examples=100, deadline=None)
def test_str_reparses_to_same_compiled_program(update):
    original_program, original_args = update.compile()
    reparsed_program, reparsed_args = parse_update(str(update)).compile()
    assert reparsed_program == original_program
    assert reparsed_args == original_args
