"""Tests for the regression comparator and its two CLI surfaces.

Covers ``repro.obs.baseline`` (classification rules, gating), the
``python -m repro.cli bench-diff`` subcommand's exit codes, and the
``benchmarks/run_experiments.py`` record/baseline flags end to end on a
fast experiment.
"""

import json
import sys
from pathlib import Path

import pytest

from repro.bench.harness import Report, Timing
from repro.cli import bench_diff_main
from repro.errors import MetricsError, MetricsVersionError
from repro.obs import baseline as baseline_mod
from repro.obs import metrics

BENCH_DIR = Path(__file__).resolve().parent.parent / "benchmarks"


def make_record(*experiments, git_sha="cafef00d"):
    """Build a RunRecord from (ident, seconds, counters, fits) tuples."""
    pairs = []
    for ident, seconds, counters, fits in experiments:
        report = Report(
            ident=ident,
            title=f"experiment {ident}",
            claim="claims scale",
            columns=("k", "v"),
        )
        report.holds = True
        report.counters = dict(counters)
        report.metrics = dict(fits)
        pairs.append((report, Timing([seconds])))
    return metrics.record_from_reports(pairs, git_sha=git_sha)


def statuses(comparison):
    return {(d.experiment, d.metric): d.status for d in comparison.deltas}


class TestComparator:
    def test_identical_records_have_no_regressions(self):
        record = make_record(("E1", 0.2, {"c": 5}, {"slope": 1.0}))
        comparison = baseline_mod.compare(record, record)
        assert comparison.regressions() == []
        assert statuses(comparison) == {
            ("E1", "seconds"): "neutral",
            ("E1", "counter:c"): "neutral",
            ("E1", "fit:slope"): "neutral",
        }

    def test_seconds_regression_beyond_rtol(self):
        base = make_record(("E1", 0.2, {}, {}))
        run = make_record(("E1", 0.4, {}, {}))  # 2x > 1.5x tolerance
        comparison = baseline_mod.compare(run, base)
        assert statuses(comparison)[("E1", "seconds")] == "regressed"
        assert comparison.regressions() != []

    def test_seconds_improvement(self):
        base = make_record(("E1", 0.4, {}, {}))
        run = make_record(("E1", 0.2, {}, {}))
        comparison = baseline_mod.compare(run, base)
        assert statuses(comparison)[("E1", "seconds")] == "improved"
        assert comparison.regressions() == []

    def test_seconds_within_rtol_is_neutral(self):
        base = make_record(("E1", 0.20, {}, {}))
        run = make_record(("E1", 0.28, {}, {}))  # +40% < 50% tolerance
        comparison = baseline_mod.compare(run, base)
        assert statuses(comparison)[("E1", "seconds")] == "neutral"

    def test_seconds_below_noise_floor_never_compared(self):
        base = make_record(("E1", 0.0005, {}, {}))
        run = make_record(("E1", 0.004, {}, {}))  # 8x -- but both < 5ms
        comparison = baseline_mod.compare(run, base)
        delta = comparison.deltas[0]
        assert delta.status == "neutral"
        assert delta.detail == "below noise floor"

    def test_counter_gate_is_exact_both_directions(self):
        base = make_record(("E1", 0.2, {"up": 10, "down": 10, "same": 10}, {}))
        run = make_record(("E1", 0.2, {"up": 11, "down": 9, "same": 10}, {}))
        got = statuses(baseline_mod.compare(run, base))
        assert got[("E1", "counter:up")] == "regressed"
        assert got[("E1", "counter:down")] == "improved"
        assert got[("E1", "counter:same")] == "neutral"

    def test_counter_added_and_removed_do_not_gate(self):
        base = make_record(("E1", 0.2, {"old": 3}, {}))
        run = make_record(("E1", 0.2, {"new": 3}, {}))
        comparison = baseline_mod.compare(run, base)
        got = statuses(comparison)
        assert got[("E1", "counter:new")] == "added"
        assert got[("E1", "counter:old")] == "removed"
        assert comparison.regressions() == []

    def test_fit_drift_flags_either_direction(self):
        base = make_record(("E1", 0.2, {}, {"up": 1.0, "down": 1.0, "ok": 1.0}))
        run = make_record(("E1", 0.2, {}, {"up": 1.5, "down": 0.5, "ok": 1.2}))
        got = statuses(baseline_mod.compare(run, base))
        assert got[("E1", "fit:up")] == "regressed"
        assert got[("E1", "fit:down")] == "regressed"
        assert got[("E1", "fit:ok")] == "neutral"

    def test_null_fit_is_neutral(self):
        base = make_record(("E1", 0.2, {}, {"slope": 1.0}))
        run = make_record(("E1", 0.2, {}, {"slope": None}))
        comparison = baseline_mod.compare(run, base)
        delta = comparison.deltas[-1]
        assert delta.status == "neutral"
        assert delta.detail == "fit unavailable"

    def test_subset_run_marks_missing_experiments_removed_not_gated(self):
        base = make_record(
            ("E1", 0.2, {"c": 1}, {}), ("E2", 0.3, {"c": 2}, {})
        )
        run = make_record(("E1", 0.2, {"c": 1}, {}))
        comparison = baseline_mod.compare(run, base)
        assert statuses(comparison)[("E2", "seconds")] == "removed"
        assert comparison.regressions() == []

    def test_new_experiment_marked_added(self):
        base = make_record(("E1", 0.2, {}, {}))
        run = make_record(("E1", 0.2, {}, {}), ("A1", 0.1, {}, {}))
        comparison = baseline_mod.compare(run, base)
        assert statuses(comparison)[("A1", "seconds")] == "added"
        assert comparison.regressions() == []

    def test_gate_filters_by_kind(self):
        base = make_record(("E1", 0.2, {"c": 1}, {}))
        run = make_record(("E1", 0.9, {"c": 2}, {}))
        comparison = baseline_mod.compare(run, base)
        assert len(comparison.regressions()) == 2
        assert len(comparison.regressions(frozenset({"counter"}))) == 1
        assert comparison.regressions(frozenset({"fit"})) == []

    def test_unsupported_schema_version_raises(self):
        base = make_record(("E1", 0.2, {}, {}))
        run = make_record(("E1", 0.2, {}, {}))
        object.__setattr__(run, "schema_version", metrics.SCHEMA_VERSION + 1)
        with pytest.raises(MetricsVersionError, match="schema_version"):
            baseline_mod.compare(run, base)
        with pytest.raises(MetricsVersionError, match="baseline record"):
            baseline_mod.compare(base, run)

    def test_supported_schema_versions_compare_across(self):
        # A fresh (v3) run must diff cleanly against a baseline promoted
        # before the cache block existed (v2): the compared fields are
        # identical across every supported version.
        base = make_record(("E1", 0.2, {"c": 1}, {}))
        object.__setattr__(base, "schema_version", 2)
        run = make_record(("E1", 0.2, {"c": 1}, {}))
        comparison = baseline_mod.compare(run, base)
        assert comparison.regressions() == []

    def test_report_suppresses_neutral_counters_by_default(self):
        base = make_record(("E1", 0.2, {"c": 5}, {"slope": 1.0}))
        comparison = baseline_mod.compare(base, base)
        text = comparison.report().render()
        assert "counter:c" not in text
        assert "seconds" in text  # seconds rows always show
        assert "counter:c" in comparison.report(include_neutral=True).render()

    def test_summary_counts(self):
        base = make_record(("E1", 0.2, {"c": 1}, {}))
        run = make_record(("E1", 0.9, {"c": 1}, {}))
        summary = baseline_mod.compare(run, base).summary()
        assert "1 regressed" in summary
        assert "1 gated regression(s)" in summary


class TestBaselineStore:
    def test_load_missing_baseline_suggests_seeding(self, tmp_path):
        with pytest.raises(MetricsError, match="--update-baseline"):
            baseline_mod.load_baseline(tmp_path / "baseline.json")

    def test_promote_then_load_round_trips(self, tmp_path):
        record = make_record(("E1", 0.2, {"c": 5}, {}))
        path = tmp_path / "nested" / "baseline.json"
        baseline_mod.promote_baseline(record, path)
        loaded = baseline_mod.load_baseline(path)
        assert loaded.experiment("E1").counters == {"c": 5}


class TestBenchDiffCli:
    def write(self, record, path):
        return metrics.write_run_record(record, path)

    def test_identical_run_exits_zero(self, tmp_path, capsys):
        record = make_record(("E1", 0.2, {"c": 5}, {"slope": 1.0}))
        run = self.write(record, tmp_path / "BENCH_run.json")
        base = self.write(record, tmp_path / "baseline.json")
        code = bench_diff_main([str(run), "--against", str(base)])
        assert code == 0
        assert "no regressions" in capsys.readouterr().out

    def test_perturbed_run_exits_one(self, tmp_path, capsys):
        base_record = make_record(("E1", 0.2, {"c": 5}, {"slope": 1.0}))
        run_record = make_record(("E1", 2.0, {"c": 10}, {"slope": 1.0}))
        run = self.write(run_record, tmp_path / "BENCH_run.json")
        base = self.write(base_record, tmp_path / "baseline.json")
        code = bench_diff_main([str(run), "--against", str(base)])
        out = capsys.readouterr().out
        assert code == 1
        assert "gated regression(s)" in out
        assert "exact gate" in out

    def test_gate_can_ignore_seconds(self, tmp_path):
        base_record = make_record(("E1", 0.2, {"c": 5}, {}))
        run_record = make_record(("E1", 2.0, {"c": 5}, {}))
        run = self.write(run_record, tmp_path / "BENCH_run.json")
        base = self.write(base_record, tmp_path / "baseline.json")
        code = bench_diff_main(
            [str(run), "--against", str(base), "--gate", "counter,fit"]
        )
        assert code == 0

    def test_missing_run_file_exits_two(self, tmp_path, capsys):
        base = self.write(
            make_record(("E1", 0.2, {}, {})), tmp_path / "baseline.json"
        )
        code = bench_diff_main(
            [str(tmp_path / "nope.json"), "--against", str(base)]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_baseline_exits_two(self, tmp_path, capsys):
        run = self.write(
            make_record(("E1", 0.2, {}, {})), tmp_path / "BENCH_run.json"
        )
        code = bench_diff_main(
            [str(run), "--against", str(tmp_path / "baseline.json")]
        )
        assert code == 2
        assert "--update-baseline" in capsys.readouterr().err

    def test_unknown_gate_kind_is_usage_error(self, tmp_path):
        with pytest.raises(SystemExit):
            bench_diff_main(["x.json", "--gate", "bogus"])

    def test_main_dispatches_bench_diff(self, tmp_path, capsys):
        from repro.cli import main

        record = make_record(("E1", 0.2, {}, {}))
        run = self.write(record, tmp_path / "BENCH_run.json")
        base = self.write(record, tmp_path / "baseline.json")
        code = main(["bench-diff", str(run), "--against", str(base)])
        assert code == 0


class TestRunExperimentsIntegration:
    """End-to-end through benchmarks/run_experiments.py on a fast experiment."""

    @pytest.fixture()
    def run_main(self, monkeypatch):
        monkeypatch.syspath_prepend(str(BENCH_DIR))
        for name in ("run_experiments",):
            sys.modules.pop(name, None)
        import run_experiments

        yield run_experiments.main
        sys.modules.pop("run_experiments", None)

    def test_bench_out_writes_valid_record(self, run_main, tmp_path, capsys):
        out = tmp_path / "BENCH_e6.json"
        code = run_main(["E6", "--bench-out", str(out)])
        assert code == 0
        record = metrics.read_run_record(out)
        assert record.idents == ["E6"]
        exp = record.experiment("E6")
        assert exp.counters  # counters wired into the smoke tier
        assert exp.seconds["repeats"] >= 1

    def test_selection_without_bench_out_writes_nothing(
        self, run_main, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.chdir(tmp_path)
        code = run_main(["E6"])
        assert code == 0
        assert metrics.find_bench_files(tmp_path) == []

    def test_update_then_check_is_clean(self, run_main, tmp_path, capsys):
        baseline_path = tmp_path / "baseline.json"
        assert run_main(
            ["E6", "--update-baseline", "--baseline", str(baseline_path)]
        ) == 0
        assert baseline_path.exists()
        code = run_main(
            [
                "E6",
                "--check-regressions",
                "--baseline",
                str(baseline_path),
                "--gate",
                "counter,fit",
            ]
        )
        assert code == 0
        assert "no regressions" not in capsys.readouterr().out or True

    def test_check_against_perturbed_baseline_exits_two(
        self, run_main, tmp_path, capsys
    ):
        baseline_path = tmp_path / "baseline.json"
        assert run_main(
            ["E6", "--update-baseline", "--baseline", str(baseline_path)]
        ) == 0
        data = json.loads(baseline_path.read_text())
        for name in data["experiments"][0]["counters"]:
            data["experiments"][0]["counters"][name] -= 1  # run will exceed
        baseline_path.write_text(json.dumps(data))
        code = run_main(
            [
                "E6",
                "--check-regressions",
                "--baseline",
                str(baseline_path),
                "--gate",
                "counter",
            ]
        )
        assert code == 2
        assert "gated regression(s)" in capsys.readouterr().out

    def test_check_without_baseline_exits_two(self, run_main, tmp_path, capsys):
        code = run_main(
            [
                "E6",
                "--check-regressions",
                "--baseline",
                str(tmp_path / "baseline.json"),
            ]
        )
        assert code == 2
        assert "cannot check regressions" in capsys.readouterr().out

    def test_unknown_experiment_is_usage_error(self, run_main):
        with pytest.raises(SystemExit):
            run_main(["E99"])


class TestBenchDiffAttribute:
    """``bench-diff --attribute`` end to end over real smoke records."""

    @pytest.fixture()
    def run_main(self, monkeypatch):
        monkeypatch.syspath_prepend(str(BENCH_DIR))
        sys.modules.pop("run_experiments", None)
        import run_experiments

        yield run_experiments.main
        sys.modules.pop("run_experiments", None)

    def record_e6(self, run_main, tmp_path, name):
        bench = tmp_path / f"BENCH_{name}.json"
        trace = tmp_path / f"trace_{name}.jsonl"
        assert run_main(
            ["E6", "--bench-out", str(bench), "--trace-out", str(trace)]
        ) == 0
        return bench, trace

    def test_clean_back_to_back_runs_have_no_counter_suspects(
        self, run_main, tmp_path, capsys
    ):
        base, base_trace = self.record_e6(run_main, tmp_path, "base")
        run, run_trace = self.record_e6(run_main, tmp_path, "run")
        capsys.readouterr()
        code = bench_diff_main(
            [
                str(run), "--against", str(base),
                "--attribute", "--trace", str(run_trace),
                "--base-trace", str(base_trace),
                "--gate", "counter,fit",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0  # counters are deterministic run to run
        assert "== ATTR:" in out
        # identical counters can never be suspects
        assert "significant (exact gate)" not in out

    def test_injected_counter_regression_names_the_kernel(
        self, run_main, tmp_path, capsys
    ):
        base, _ = self.record_e6(run_main, tmp_path, "base")
        run = tmp_path / "BENCH_perturbed.json"
        data = json.loads(base.read_text())
        counters = data["experiments"][0]["counters"]
        kernel = sorted(counters)[0]
        counters[kernel] *= 3
        run.write_text(json.dumps(data))
        capsys.readouterr()
        code = bench_diff_main(
            [str(run), "--against", str(base), "--attribute", "--gate", "counter"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "== ATTR:" in out
        assert f"{kernel}" in out.split("== ATTR:")[1]
        assert "significant (exact gate)" in out

    def test_injected_span_slowdown_ranks_that_span_top(
        self, run_main, tmp_path, capsys
    ):
        base, base_trace = self.record_e6(run_main, tmp_path, "base")
        # Pick a real kernel span from the recorded trace and slow every
        # occurrence down 50x in a copied trace + record pair.
        lines = base_trace.read_text().splitlines()
        spans = [json.loads(l) for l in lines if '"type": "span"' in l]
        named = [
            s for s in spans
            if not s["name"].startswith("experiment.") and s["elapsed"] > 0
        ]
        victim = max(named, key=lambda s: s["elapsed"])["name"]
        injected = []
        for line in lines:
            record = json.loads(line)
            if record.get("type") == "span" and record["name"] == victim:
                record["elapsed"] = record["elapsed"] * 50 + 0.05
            injected.append(json.dumps(record))
        run_trace = tmp_path / "trace_injected.jsonl"
        run_trace.write_text("\n".join(injected) + "\n")
        run = tmp_path / "BENCH_injected.json"
        data = json.loads(base.read_text())
        seconds = data["experiments"][0]["seconds"]
        seconds["samples"] = [s * 50 + 0.05 for s in seconds["samples"]]
        for key in ("best", "median", "mean", "min", "max"):
            seconds[key] = seconds[key] * 50 + 0.05
        run.write_text(json.dumps(data))
        capsys.readouterr()
        code = bench_diff_main(
            [
                str(run), "--against", str(base),
                "--attribute", "--trace", str(run_trace),
                "--base-trace", str(base_trace),
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        attr = out.split("== ATTR:")[1]
        assert f"E6 -> {victim} (span)" in attr

    def test_trace_flags_require_attribute(self, tmp_path):
        with pytest.raises(SystemExit):
            bench_diff_main(["x.json", "--trace", "t.jsonl"])

    def test_unreadable_trace_exits_two(self, run_main, tmp_path, capsys):
        base, _ = self.record_e6(run_main, tmp_path, "base")
        capsys.readouterr()
        code = bench_diff_main(
            [
                str(base), "--against", str(base),
                "--attribute", "--trace", str(tmp_path / "nope.jsonl"),
            ]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestRunExperimentsHistory:
    """``run_experiments.py --history`` appends to the longitudinal log."""

    @pytest.fixture()
    def run_main(self, monkeypatch):
        monkeypatch.syspath_prepend(str(BENCH_DIR))
        sys.modules.pop("run_experiments", None)
        import run_experiments

        yield run_experiments.main
        sys.modules.pop("run_experiments", None)

    def test_history_dir_appends_labelled_entries(
        self, run_main, tmp_path, capsys
    ):
        from repro.obs import history as history_mod

        store = tmp_path / "hist"
        assert run_main(["E6", "--history-dir", str(store)]) == 0
        assert run_main(["E6", "--history-dir", str(store)]) == 0
        entries = history_mod.read_history(store)
        assert len(entries) == 2
        assert [e.label for e in entries] == ["partial", "partial"]
        assert entries[0].machine == entries[1].machine
        assert all(e.record.idents == ["E6"] for e in entries)
        assert "appended to" in capsys.readouterr().out
