"""Tests for compact-store query answering (repro.relational.compact_query).

The headline property: compact answers agree with the grounded mirror on
identical scenarios, at a cost independent of the domain size.
"""

import pytest

from repro.relational.atoms import OpenAtom
from repro.relational.compact_query import (
    certain_disjunction,
    certain_fact,
    certain_values,
    possible_fact,
)
from repro.relational.constants import CategoryExpr
from repro.relational.language import exists, var, ANY
from repro.relational.schema import RelationalSchema
from repro.relational.session import RelationalDatabase


@pytest.fixture()
def schema():
    return RelationalSchema.build(
        constants={
            "person": ["Jones", "Smith"],
            "dept": ["D1", "D2"],
            "telno": ["T1", "T2", "T3"],
        },
        relations={"R": [("N", "person"), ("D", "dept"), ("T", "telno")]},
    )


class TestCertainFact:
    def test_ground_atom_is_certain(self, schema):
        store = [OpenAtom("R", ("Jones", "D1", "T2"))]
        assert certain_fact(store, schema.dictionary, schema, "R", ("Jones", "D1", "T2"))
        assert not certain_fact(store, schema.dictionary, schema, "R", ("Jones", "D1", "T1"))

    def test_open_atom_forces_nothing_specific(self, schema):
        u = schema.dictionary.activate(CategoryExpr(schema.algebra.named("telno")))
        store = [OpenAtom("R", ("Jones", "D1", u))]
        for t in ("T1", "T2", "T3"):
            assert not certain_fact(store, schema.dictionary, schema, "R", ("Jones", "D1", t))

    def test_singleton_narrowed_null_forces_its_value(self, schema):
        u = schema.dictionary.activate(
            CategoryExpr(schema.algebra.named("telno"), ee=["T1", "T3"])
        )
        store = [OpenAtom("R", ("Jones", "D1", u))]
        assert certain_fact(store, schema.dictionary, schema, "R", ("Jones", "D1", "T2"))

    def test_empty_store_forces_nothing(self, schema):
        assert not certain_fact([], schema.dictionary, schema, "R", ("Jones", "D1", "T1"))


class TestCertainDisjunction:
    def test_null_atom_makes_its_disjunction_certain(self, schema):
        u = schema.dictionary.activate(CategoryExpr(schema.algebra.named("telno")))
        store = [OpenAtom("R", ("Jones", "D1", u))]
        query = [("R", ("Jones", "D1", t)) for t in ("T1", "T2", "T3")]
        assert certain_disjunction(store, schema.dictionary, schema, query)

    def test_partial_disjunction_not_certain(self, schema):
        u = schema.dictionary.activate(CategoryExpr(schema.algebra.named("telno")))
        store = [OpenAtom("R", ("Jones", "D1", u))]
        query = [("R", ("Jones", "D1", t)) for t in ("T1", "T2")]  # missing T3
        assert not certain_disjunction(store, schema.dictionary, schema, query)

    def test_narrowed_null_narrows_the_needed_disjunction(self, schema):
        u = schema.dictionary.activate(
            CategoryExpr(schema.algebra.named("telno"), ee=["T3"])
        )
        store = [OpenAtom("R", ("Jones", "D1", u))]
        query = [("R", ("Jones", "D1", t)) for t in ("T1", "T2")]
        assert certain_disjunction(store, schema.dictionary, schema, query)

    def test_empty_query_never_certain(self, schema):
        store = [OpenAtom("R", ("Jones", "D1", "T1"))]
        assert not certain_disjunction(store, schema.dictionary, schema, [])

    def test_cross_relation_disjunction(self):
        schema = RelationalSchema.build(
            constants={"person": ["Jones"], "room": ["R1", "R2"]},
            relations={
                "In": [("N", "person"), ("W", "room")],
                "Out": [("N", "person"), ("W", "room")],
            },
        )
        u = schema.dictionary.activate(CategoryExpr(schema.algebra.named("room")))
        store = [OpenAtom("In", ("Jones", u))]
        query = [("In", ("Jones", "R1")), ("In", ("Jones", "R2"))]
        assert certain_disjunction(store, schema.dictionary, schema, query)
        mixed = [("In", ("Jones", "R1")), ("Out", ("Jones", "R2"))]
        assert not certain_disjunction(store, schema.dictionary, schema, mixed)


class TestHelpers:
    def test_possible_fact_is_typing(self, schema):
        assert possible_fact(schema, "R", ("Jones", "D1", "T1"))
        assert not possible_fact(schema, "R", ("T1", "D1", "T1"))

    def test_certain_values(self, schema):
        store = [OpenAtom("R", ("Jones", "D1", "T2"))]
        got = certain_values(
            store, schema.dictionary, schema, "R", ("Jones", "D1", None), 2
        )
        assert got == frozenset({"T2"})


class TestAgreementWithGroundedMirror:
    """The compact answers must equal the grounded mirror's on the same
    update scripts (the Section 5.2 'same possible worlds' promise)."""

    def run_jones_script(self, schema, grounded: bool) -> RelationalDatabase:
        db = RelationalDatabase(schema, grounded=grounded)
        db.tell(("R", "Jones", "D1", "T2"))
        db.tell(("R", "Smith", "D2", "T3"))
        db.where_update(
            pattern=("R", "Jones", var("y"), ANY),
            action=("R", "Jones", var("y"), exists(schema.algebra.named("telno"))),
        )
        return db

    def test_certain_facts_agree(self, schema):
        with_mirror = self.run_jones_script(schema, grounded=True)
        compact_only = self.run_jones_script(schema, grounded=False)
        for person, dept in (("Jones", "D1"), ("Smith", "D2")):
            for t in ("T1", "T2", "T3"):
                assert with_mirror.certain("R", person, dept, t) == (
                    compact_only.certain("R", person, dept, t)
                ), (person, dept, t)

    def test_certain_disjunction_agrees(self, schema):
        with_mirror = self.run_jones_script(schema, grounded=True)
        compact_only = self.run_jones_script(schema, grounded=False)
        some_phone = [("R", ("Jones", "D1", t)) for t in ("T1", "T2", "T3")]
        assert with_mirror.certain_disjunction(some_phone)
        assert compact_only.certain_disjunction(some_phone)
        partial = some_phone[:2]
        assert with_mirror.certain_disjunction(partial) == (
            compact_only.certain_disjunction(partial)
        )

    def test_domain_size_independence(self):
        """Compact answering works where grounding is impractical."""
        from repro.workloads.generators import directory_schema

        schema = directory_schema(512)  # 4096 ground letters
        db = RelationalDatabase(schema, grounded=False)
        telno = schema.algebra.named("telno")
        u = db.unknown(telno)
        db.tell(db.atom("R", "P1", "D1", u))
        query = [("R", ("P1", "D1", f"T{i}")) for i in range(1, 513)]
        assert db.certain_disjunction(query)
        assert not db.certain("R", "P1", "D1", "T1")
