"""Tests for the Boolean algebra of types (repro.relational.types)."""

import pytest

from repro.errors import TypeAlgebraError
from repro.relational.types import TypeAlgebra


@pytest.fixture()
def algebra():
    return TypeAlgebra(["Jones", "Smith", "D1", "D2", "T1", "T2"])


class TestAlgebraConstruction:
    def test_empty_universe_rejected(self):
        with pytest.raises(TypeAlgebraError):
            TypeAlgebra([])

    def test_define_and_lookup(self, algebra):
        people = algebra.define("person", ["Jones", "Smith"])
        assert algebra.named("person") == people
        assert "Jones" in people

    def test_unknown_member_rejected(self, algebra):
        with pytest.raises(TypeAlgebraError, match="unknown constants"):
            algebra.define("bad", ["Nobody"])

    def test_duplicate_name_rejected(self, algebra):
        algebra.define("t", ["T1"])
        with pytest.raises(TypeAlgebraError, match="already"):
            algebra.define("t", ["T2"])

    def test_unknown_type_lookup(self, algebra):
        with pytest.raises(TypeAlgebraError, match="unknown type"):
            algebra.named("nope")

    def test_universal_and_empty(self, algebra):
        assert algebra.universal.members == algebra.universe
        assert algebra.empty.is_empty()

    def test_singleton(self, algebra):
        assert algebra.singleton("D1").members == frozenset({"D1"})
        with pytest.raises(TypeAlgebraError):
            algebra.singleton("Nobody")

    def test_names_sorted(self, algebra):
        algebra.define("b", ["T1"])
        algebra.define("a", ["T2"])
        assert algebra.names() == ("a", "b")


class TestBooleanOperations:
    def test_boolean_laws(self, algebra):
        people = algebra.define("person", ["Jones", "Smith"])
        depts = algebra.define("dept", ["D1", "D2"])
        assert (people & depts).is_empty()
        assert (people | depts).members == frozenset({"Jones", "Smith", "D1", "D2"})
        assert (~people).members == algebra.universe - people.members
        assert (people - algebra.singleton("Jones")).members == frozenset({"Smith"})

    def test_de_morgan(self, algebra):
        a = algebra.define("a", ["Jones", "D1"])
        b = algebra.define("b", ["D1", "T1"])
        assert ~(a | b) == (~a) & (~b)

    def test_order(self, algebra):
        people = algebra.define("person", ["Jones", "Smith"])
        assert algebra.singleton("Jones") <= people
        assert people <= algebra.universal

    def test_cross_algebra_operations_rejected(self, algebra):
        other = TypeAlgebra(["X"])
        with pytest.raises(TypeAlgebraError):
            algebra.universal & other.universal

    def test_iteration_sorted(self, algebra):
        t = algebra.define("person", ["Smith", "Jones"])
        assert list(t) == ["Jones", "Smith"]
