"""Tests for semantic resolution over open atoms (Section 5.2)."""

import pytest

from repro.relational.atoms import OpenAtom
from repro.relational.constants import CategoryExpr, ConstantDictionary
from repro.relational.semantic_resolution import (
    OpenClause,
    SignedAtom,
    semantic_resolvent,
    semantic_unify,
)
from repro.relational.types import TypeAlgebra


@pytest.fixture()
def setup():
    algebra = TypeAlgebra(["Jones", "Smith", "T1", "T2", "T3"])
    person = algebra.define("person", ["Jones", "Smith"])
    telno = algebra.define("telno", ["T1", "T2", "T3"])
    dictionary = ConstantDictionary(algebra)
    for name, t in [("Jones", person), ("Smith", person)] + [
        (x, telno) for x in ("T1", "T2", "T3")
    ]:
        dictionary.register_external(name, t)
    return algebra, person, telno, dictionary


class TestSemanticUnify:
    def test_identical_ground_atoms(self, setup):
        *_, dictionary = setup
        a = OpenAtom("Phone", ("Jones", "T1"))
        assert semantic_unify(dictionary, a, a) == {}

    def test_different_constants_fail(self, setup):
        *_, dictionary = setup
        left = OpenAtom("Phone", ("Jones", "T1"))
        right = OpenAtom("Phone", ("Jones", "T2"))
        assert semantic_unify(dictionary, left, right) is None

    def test_different_relations_fail(self, setup):
        *_, dictionary = setup
        left = OpenAtom("Phone", ("Jones", "T1"))
        right = OpenAtom("Fax", ("Jones", "T1"))
        assert semantic_unify(dictionary, left, right) is None

    def test_internal_vs_external_narrows(self, setup):
        _, _, telno, dictionary = setup
        u = dictionary.activate(CategoryExpr(telno))
        left = OpenAtom("Phone", ("Jones", u))
        right = OpenAtom("Phone", ("Jones", "T2"))
        assert semantic_unify(dictionary, left, right) == {
            u.ident: frozenset({"T2"})
        }

    def test_internal_vs_external_outside_category_fails(self, setup):
        _, _, telno, dictionary = setup
        u = dictionary.activate(CategoryExpr(telno, ee=["T2"]))
        left = OpenAtom("Phone", ("Jones", u))
        right = OpenAtom("Phone", ("Jones", "T2"))
        assert semantic_unify(dictionary, left, right) is None

    def test_internal_vs_internal(self, setup):
        _, _, telno, dictionary = setup
        u1 = dictionary.activate(CategoryExpr(telno, ee=["T1"]))
        u2 = dictionary.activate(CategoryExpr(telno, ee=["T3"]))
        got = semantic_unify(
            dictionary,
            OpenAtom("Phone", ("Jones", u1)),
            OpenAtom("Phone", ("Jones", u2)),
        )
        assert got == {u1.ident: frozenset({"T2"}), u2.ident: frozenset({"T2"})}

    def test_repeated_internal_constant_consistency(self, setup):
        # Pair(u, u) against Pair(T1, T2): positionwise intersections are
        # nonempty but the shared u cannot be both T1 and T2.
        _, _, telno, dictionary = setup
        u = dictionary.activate(CategoryExpr(telno))
        left = OpenAtom("Pair", (u, u))
        right = OpenAtom("Pair", ("T1", "T2"))
        assert semantic_unify(dictionary, left, right) is None


class TestSemanticResolvent:
    def test_basic_resolution(self, setup):
        *_, dictionary = setup
        p = SignedAtom(OpenAtom("Phone", ("Jones", "T1")))
        n = p.negated()
        q = SignedAtom(OpenAtom("Phone", ("Smith", "T2")))
        left = OpenClause([p, q])
        right = OpenClause([n])
        resolvent = semantic_resolvent(dictionary, left, right, on=(p, n))
        assert resolvent == OpenClause([q])

    def test_resolution_with_null(self, setup):
        _, _, telno, dictionary = setup
        u = dictionary.activate(CategoryExpr(telno))
        p = SignedAtom(OpenAtom("Phone", ("Jones", u)))
        n = SignedAtom(OpenAtom("Phone", ("Jones", "T2")), positive=False)
        resolvent = semantic_resolvent(
            dictionary, OpenClause([p]), OpenClause([n]), on=(p, n)
        )
        assert resolvent == OpenClause([])  # empty clause: contradiction found

    def test_non_unifiable_pair_returns_none(self, setup):
        *_, dictionary = setup
        p = SignedAtom(OpenAtom("Phone", ("Jones", "T1")))
        n = SignedAtom(OpenAtom("Phone", ("Jones", "T2")), positive=False)
        assert semantic_resolvent(
            dictionary, OpenClause([p]), OpenClause([n]), on=(p, n)
        ) is None

    def test_polarity_checked(self, setup):
        *_, dictionary = setup
        p = SignedAtom(OpenAtom("Phone", ("Jones", "T1")))
        assert semantic_resolvent(
            dictionary, OpenClause([p]), OpenClause([p]), on=(p, p)
        ) is None

    def test_literals_must_belong_to_clauses(self, setup):
        *_, dictionary = setup
        p = SignedAtom(OpenAtom("Phone", ("Jones", "T1")))
        n = p.negated()
        other = SignedAtom(OpenAtom("Phone", ("Smith", "T1")))
        assert semantic_resolvent(
            dictionary, OpenClause([other]), OpenClause([n]), on=(p, n)
        ) is None
