"""Tests for the open-clause prover (repro.relational.prover)."""

import itertools

import pytest

from repro.relational.prover import OpenKB
from repro.relational.schema import RelationalSchema


@pytest.fixture()
def schema():
    return RelationalSchema.build(
        constants={
            "person": ["Jones", "Smith"],
            "telno": ["T1", "T2", "T3"],
        },
        relations={
            "Phone": [("N", "person"), ("T", "telno")],
            "Busy": [("N", "person")],
        },
    )


class TestSatisfiability:
    def test_empty_kb_satisfiable(self, schema):
        assert OpenKB(schema).is_satisfiable()

    def test_ground_contradiction(self, schema):
        kb = OpenKB(schema)
        kb.add_fact("Busy", "Jones")
        kb.add_denial("Busy", "Jones")
        assert not kb.is_satisfiable()

    def test_null_escapes_single_denial(self, schema):
        # Phone(Jones, u) & ~Phone(Jones, T2): satisfiable with u != T2.
        kb = OpenKB(schema)
        u = kb.new_null(schema.algebra.named("telno"))
        kb.add_fact("Phone", "Jones", u)
        kb.add_denial("Phone", "Jones", "T2")
        assert kb.is_satisfiable()

    def test_null_cornered_by_denials(self, schema):
        # Denying every possible value of u is unsatisfiable.
        kb = OpenKB(schema)
        u = kb.new_null(schema.algebra.named("telno"))
        kb.add_fact("Phone", "Jones", u)
        for t in ("T1", "T2", "T3"):
            kb.add_denial("Phone", "Jones", t)
        assert not kb.is_satisfiable()

    def test_narrowed_null_cornered_faster(self, schema):
        kb = OpenKB(schema)
        u = kb.new_null(schema.algebra.named("telno"), ee=["T2", "T3"])
        kb.add_fact("Phone", "Jones", u)
        kb.add_denial("Phone", "Jones", "T1")
        assert not kb.is_satisfiable()


class TestEntailment:
    def test_unit_fact_entailed(self, schema):
        kb = OpenKB(schema)
        kb.add_fact("Phone", "Jones", "T1")
        assert kb.entails_fact("Phone", "Jones", "T1")
        assert not kb.entails_fact("Phone", "Jones", "T2")

    def test_null_entails_disjunction_not_members(self, schema):
        kb = OpenKB(schema)
        u = kb.new_null(schema.algebra.named("telno"))
        kb.add_fact("Phone", "Jones", u)
        disjunction = [
            (True, "Phone", ("Jones", t)) for t in ("T1", "T2", "T3")
        ]
        assert kb.entails_clause(disjunction)
        assert not kb.entails_clause(disjunction[:2])
        assert not kb.entails_fact("Phone", "Jones", "T1")

    def test_rules_with_nulls_propagate(self, schema):
        # ~Phone(Jones, x) | Busy(Jones) for every x, plus Phone(Jones, u):
        # Busy(Jones) follows whatever u is.
        kb = OpenKB(schema)
        u = kb.new_null(schema.algebra.named("telno"))
        kb.add_fact("Phone", "Jones", u)
        for t in ("T1", "T2", "T3"):
            kb.add_clause(
                [(False, "Phone", ("Jones", t)), (True, "Busy", ("Jones",))]
            )
        assert kb.entails_fact("Busy", "Jones")

    def test_rule_with_null_in_rule_clause(self, schema):
        # A clause may itself carry a null: ~Phone(Jones, u) | Busy(Jones)
        # with the SAME u as the fact -- entailment goes through because
        # u co-varies.
        kb = OpenKB(schema)
        u = kb.new_null(schema.algebra.named("telno"))
        kb.add_fact("Phone", "Jones", u)
        kb.add_clause([(False, "Phone", ("Jones", u)), (True, "Busy", ("Jones",))])
        assert kb.entails_fact("Busy", "Jones")

    def test_unsatisfiable_kb_entails_everything(self, schema):
        kb = OpenKB(schema)
        kb.add_fact("Busy", "Jones")
        kb.add_denial("Busy", "Jones")
        assert kb.entails_fact("Phone", "Smith", "T3")
        assert kb.entails_clause([])

    def test_empty_disjunction_only_from_unsat(self, schema):
        kb = OpenKB(schema)
        kb.add_fact("Busy", "Jones")
        assert not kb.entails_clause([])

    def test_pruning_no_positive_support(self, schema):
        # Busy(Smith) appears nowhere positively: cannot be entailed.
        kb = OpenKB(schema)
        u = kb.new_null(schema.algebra.named("telno"))
        kb.add_fact("Phone", "Jones", u)
        kb.add_denial("Busy", "Jones")
        assert not kb.entails_fact("Busy", "Smith")


class TestAgainstExhaustiveSemantics:
    """Cross-check the prover against brute-force (valuation, world)
    enumeration on a small schema."""

    def brute_force_entails(self, kb: OpenKB, relation, args) -> bool:
        from repro.logic.semantics import models_of_clauses

        target = kb.grounding.vocabulary.index_of(
            kb.grounding.proposition_name(relation, tuple(args))
        )
        any_world = False
        for valuation in kb._valuations():
            instantiated = kb._instantiate(kb.clauses, valuation)
            if instantiated is None:
                continue
            for world in models_of_clauses(instantiated):
                any_world = True
                if not world >> target & 1:
                    return False
        return True  # vacuously if no worlds

    def test_agreement_on_random_kbs(self, schema):
        import random

        rng = random.Random(13)
        people = ["Jones", "Smith"]
        phones = ["T1", "T2", "T3"]
        for trial in range(8):
            kb = OpenKB(schema)
            u = kb.new_null(schema.algebra.named("telno"))
            for _ in range(rng.randint(1, 3)):
                kb.add_fact("Phone", rng.choice(people), rng.choice(phones + [u]))
            if rng.random() < 0.5:
                kb.add_denial("Phone", rng.choice(people), rng.choice(phones))
            for person, phone in itertools.product(people, phones):
                expected = self.brute_force_entails(kb, "Phone", (person, phone))
                assert kb.entails_fact("Phone", person, phone) == expected, (
                    trial,
                    person,
                    phone,
                )


class TestUniversalClauses:
    def test_expansion_count(self, schema):
        kb = OpenKB(schema)
        added = kb.add_universal_clause(
            {"p": schema.algebra.named("person")},
            [(False, "Busy", ("p",)), (True, "Busy", ("p",))],
        )
        assert added == 2  # Jones and Smith

    def test_universal_rule_fires_for_every_instance(self, schema):
        # forall p: ~Phone(p, T1) | Busy(p).
        kb = OpenKB(schema)
        kb.add_universal_clause(
            {"p": schema.algebra.named("person")},
            [(False, "Phone", ("p", "T1")), (True, "Busy", ("p",))],
        )
        kb.add_fact("Phone", "Jones", "T1")
        kb.add_fact("Phone", "Smith", "T1")
        assert kb.entails_fact("Busy", "Jones")
        assert kb.entails_fact("Busy", "Smith")

    def test_universal_rule_interacts_with_nulls(self, schema):
        # forall t: ~Phone(Jones, t) | Busy(Jones), plus Phone(Jones, u):
        # Busy(Jones) follows whatever u denotes.
        kb = OpenKB(schema)
        u = kb.new_null(schema.algebra.named("telno"))
        kb.add_fact("Phone", "Jones", u)
        kb.add_universal_clause(
            {"t": schema.algebra.named("telno")},
            [(False, "Phone", ("Jones", "t")), (True, "Busy", ("Jones",))],
        )
        assert kb.entails_fact("Busy", "Jones")

    def test_two_variables_expand_as_product(self, schema):
        kb = OpenKB(schema)
        added = kb.add_universal_clause(
            {"p": schema.algebra.named("person"),
             "t": schema.algebra.named("telno")},
            [(True, "Phone", ("p", "t"))],
        )
        assert added == 2 * 3
