"""Tests for constants and the dictionary (repro.relational.constants)."""

import pytest

from repro.errors import TypeAlgebraError, UnknownConstantError
from repro.relational.constants import (
    CategoryExpr,
    ConstantDictionary,
    InternalConstant,
)
from repro.relational.types import TypeAlgebra


@pytest.fixture()
def setup():
    algebra = TypeAlgebra(["Jones", "T1", "T2", "T3"])
    telno = algebra.define("telno", ["T1", "T2", "T3"])
    person = algebra.define("person", ["Jones"])
    dictionary = ConstantDictionary(algebra)
    dictionary.register_external("Jones", person)
    for t in ("T1", "T2", "T3"):
        dictionary.register_external(t, telno)
    return algebra, telno, person, dictionary


class TestCategoryExpr:
    def test_denotation_with_exceptions(self, setup):
        algebra, telno, person, _ = setup
        category = CategoryExpr(telno, ie=["Jones"], ee=["T2"])
        assert category.denotation() == frozenset({"T1", "T3", "Jones"})

    def test_unknown_exception_constant_rejected(self, setup):
        algebra, telno, _, _ = setup
        with pytest.raises(TypeAlgebraError):
            CategoryExpr(telno, ie=["Nobody"])

    def test_excluding_narrows(self, setup):
        _, telno, _, _ = setup
        category = CategoryExpr(telno).excluding(["T1"])
        assert category.denotation() == frozenset({"T2", "T3"})

    def test_restricted_to(self, setup):
        _, telno, _, _ = setup
        category = CategoryExpr(telno).restricted_to(frozenset({"T2", "Jones"}))
        assert category.denotation() == frozenset({"T2"})

    def test_equality(self, setup):
        _, telno, _, _ = setup
        assert CategoryExpr(telno, ee=["T1"]) == CategoryExpr(telno, ee=["T1"])
        assert CategoryExpr(telno) != CategoryExpr(telno, ee=["T1"])


class TestDictionary:
    def test_external_registration_and_lookup(self, setup):
        _, _, person, dictionary = setup
        assert dictionary.external_type("Jones") == person
        assert dictionary.denotation_of("Jones") == frozenset({"Jones"})

    def test_external_must_belong_to_declared_type(self, setup):
        algebra, telno, _, dictionary = setup
        with pytest.raises(TypeAlgebraError):
            dictionary.register_external("Jones", telno)

    def test_unknown_external(self, setup):
        *_, dictionary = setup
        with pytest.raises(UnknownConstantError):
            dictionary.external_type("Nobody")
        with pytest.raises(UnknownConstantError):
            dictionary.denotation_of("Nobody")

    def test_activate_fresh_internals(self, setup):
        _, telno, _, dictionary = setup
        u1 = dictionary.activate(CategoryExpr(telno))
        u2 = dictionary.activate(CategoryExpr(telno))
        assert u1 != u2  # no unique naming: distinct symbols, same category
        assert dictionary.category_of(u1) == dictionary.category_of(u2)

    def test_inactive_internal_rejected(self, setup):
        *_, dictionary = setup
        with pytest.raises(UnknownConstantError):
            dictionary.category_of(InternalConstant("u99"))

    def test_narrow_updates_category(self, setup):
        _, telno, _, dictionary = setup
        u = dictionary.activate(CategoryExpr(telno))
        dictionary.narrow(u, CategoryExpr(telno, ee=["T1"]))
        assert dictionary.denotation_of(u) == frozenset({"T2", "T3"})

    def test_active_internals_listing(self, setup):
        _, telno, _, dictionary = setup
        u1 = dictionary.activate(CategoryExpr(telno))
        assert u1 in dictionary.active_internals()


class TestSemanticUnificationService:
    def test_external_external(self, setup):
        *_, dictionary = setup
        assert dictionary.intersect("T1", "T1") == frozenset({"T1"})
        assert dictionary.intersect("T1", "T2") == frozenset()

    def test_internal_external(self, setup):
        _, telno, _, dictionary = setup
        u = dictionary.activate(CategoryExpr(telno, ee=["T3"]))
        assert dictionary.intersect(u, "T1") == frozenset({"T1"})
        assert dictionary.intersect(u, "T3") == frozenset()
        assert dictionary.intersect(u, "Jones") == frozenset()

    def test_internal_internal(self, setup):
        _, telno, _, dictionary = setup
        u1 = dictionary.activate(CategoryExpr(telno, ee=["T1"]))
        u2 = dictionary.activate(CategoryExpr(telno, ee=["T2"]))
        assert dictionary.intersect(u1, u2) == frozenset({"T3"})
