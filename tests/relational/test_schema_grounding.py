"""Tests for relational schemata and grounding (schema.py, grounding.py, atoms.py)."""

import pytest

from repro.errors import SchemaError
from repro.relational.atoms import OpenAtom, atom_valuations
from repro.relational.constants import CategoryExpr
from repro.relational.grounding import Grounding
from repro.relational.schema import RelationalSchema


@pytest.fixture()
def schema():
    return RelationalSchema.build(
        constants={
            "person": ["Jones", "Smith"],
            "dept": ["D1", "D2"],
            "telno": ["T1", "T2", "T3"],
        },
        relations={
            "R": [("N", "person"), ("D", "dept"), ("T", "telno")],
            "Head": [("D", "dept"), ("N", "person")],
        },
    )


class TestSchema:
    def test_ground_fact_count(self, schema):
        # R: 2*2*3 = 12, Head: 2*2 = 4.
        assert schema.ground_fact_count() == 16
        assert len(list(schema.ground_facts())) == 16

    def test_typing_constraints(self, schema):
        r = schema.relation("R")
        assert r.admits(("Jones", "D1", "T2"))
        assert not r.admits(("T1", "D1", "T2"))    # person slot needs a person
        assert not r.admits(("Jones", "D1"))        # arity

    def test_unknown_relation(self, schema):
        with pytest.raises(SchemaError):
            schema.relation("Nope")

    def test_smallest_type_registration(self, schema):
        assert schema.dictionary.external_type("Jones").label == "person"


class TestGrounding:
    def test_vocabulary_names(self, schema):
        grounding = Grounding(schema)
        assert "R.Jones.D1.T2" in grounding.vocabulary
        assert "Head.D1.Jones" in grounding.vocabulary
        assert len(grounding.vocabulary) == 16

    def test_fact_roundtrip(self, schema):
        grounding = Grounding(schema)
        name = grounding.proposition_name("R", ("Jones", "D1", "T2"))
        assert grounding.fact_of(name) == ("R", ("Jones", "D1", "T2"))

    def test_fact_variable_validates(self, schema):
        grounding = Grounding(schema)
        with pytest.raises(SchemaError):
            grounding.fact_variable("R", ("T1", "D1", "T2"))

    def test_facts_of_relation(self, schema):
        grounding = Grounding(schema)
        assert len(grounding.facts_of_relation("Head")) == 4

    def test_ground_atom_formula_is_variable(self, schema):
        grounding = Grounding(schema)
        atom = OpenAtom("R", ("Jones", "D1", "T2"))
        assert str(grounding.atom_formula(atom)) == "R.Jones.D1.T2"

    def test_open_atom_formula_is_enormous_disjunction(self, schema):
        # Section 5.1.1: the update formula is the disjunction over telnos.
        grounding = Grounding(schema)
        u = schema.dictionary.activate(
            CategoryExpr(schema.algebra.named("telno"))
        )
        formula = grounding.atom_formula(OpenAtom("R", ("Jones", "D1", u)))
        assert formula.props() == {
            "R.Jones.D1.T1",
            "R.Jones.D1.T2",
            "R.Jones.D1.T3",
        }

    def test_shared_internal_constant_covaries(self, schema):
        # Head(D1, u) & R(u-person, ...): same u must take one value in
        # both conjuncts of each disjunct.
        grounding = Grounding(schema)
        u = schema.dictionary.activate(
            CategoryExpr(schema.algebra.named("person"))
        )
        formula = grounding.atoms_formula(
            [OpenAtom("Head", ("D1", u)), OpenAtom("R", (u, "D1", "T1"))]
        )
        text = str(formula)
        # Two disjuncts: u = Jones and u = Smith, each a conjunction.
        assert "Head.D1.Jones & R.Jones.D1.T1" in text.replace("(", "").replace(")", "")
        assert "Head.D1.Smith & R.Smith.D1.T1" in text.replace("(", "").replace(")", "")

    def test_empty_valuation_set_rejected(self, schema):
        grounding = Grounding(schema)
        u = schema.dictionary.activate(
            CategoryExpr(schema.algebra.named("telno"), ee=["T1", "T2", "T3"])
        )
        with pytest.raises(SchemaError):
            OpenAtom("R", ("Jones", "D1", u)).validate(schema, schema.dictionary)


class TestOpenAtoms:
    def test_internals_deduplicated(self, schema):
        u = schema.dictionary.activate(CategoryExpr(schema.algebra.named("dept")))
        atom = OpenAtom("Head", (u, "Jones"))
        assert atom.internals() == (u,)
        assert not atom.is_ground()

    def test_instantiate(self, schema):
        u = schema.dictionary.activate(CategoryExpr(schema.algebra.named("dept")))
        atom = OpenAtom("Head", (u, "Jones"))
        grounded = atom.instantiate({u.ident: "D2"})
        assert grounded == OpenAtom("Head", ("D2", "Jones"))
        assert grounded.is_ground()

    def test_validate_rejects_bad_arity_and_typing(self, schema):
        with pytest.raises(SchemaError):
            OpenAtom("R", ("Jones", "D1")).validate(schema, schema.dictionary)
        with pytest.raises(SchemaError):
            OpenAtom("R", ("D1", "D1", "T1")).validate(schema, schema.dictionary)

    def test_valuations_respect_typing(self, schema):
        # An internal constant of the universal type filling a dept slot
        # only enumerates departments.
        u = schema.dictionary.activate(CategoryExpr(schema.algebra.universal))
        atom = OpenAtom("Head", (u, "Jones"))
        values = {v[u.ident] for v in atom_valuations([atom], schema.dictionary, schema)}
        assert values == {"D1", "D2"}

    def test_ground_args_guard(self, schema):
        u = schema.dictionary.activate(CategoryExpr(schema.algebra.named("dept")))
        with pytest.raises(SchemaError):
            OpenAtom("Head", (u, "Jones")).ground_args()
