"""Tests for RelationalDatabase, including the Jones motivating example
(Sections 5.1.1 and 5.2)."""

import pytest

from repro.relational.language import ANY, exists, var
from repro.relational.schema import RelationalSchema
from repro.relational.session import RelationalDatabase


@pytest.fixture()
def schema():
    return RelationalSchema.build(
        constants={
            "person": ["Jones", "Smith"],
            "dept": ["D1", "D2"],
            "telno": ["T1", "T2", "T3", "T4"],
        },
        relations={"R": [("N", "person"), ("D", "dept"), ("T", "telno")]},
    )


@pytest.fixture()
def db(schema):
    database = RelationalDatabase(schema)
    database.tell(("R", "Jones", "D1", "T2"))
    database.tell(("R", "Smith", "D2", "T4"))
    return database


class TestTellAndQuery:
    def test_told_facts_are_certain(self, db):
        assert db.certain("R", "Jones", "D1", "T2")
        assert db.certain("R", "Smith", "D2", "T4")

    def test_untold_facts_are_open(self, db):
        assert not db.certain("R", "Jones", "D2", "T1")
        assert db.possible("R", "Jones", "D2", "T1")

    def test_tell_with_null_gives_disjunctive_knowledge(self, db, schema):
        telno = schema.algebra.named("telno")
        u = db.unknown(telno, ee=["T4"])
        db.tell(db.atom("R", "Smith", "D1", u))
        # Some phone among T1..T3 is certain, no single one is.
        assert db.grounded.is_certain(
            "R.Smith.D1.T1 | R.Smith.D1.T2 | R.Smith.D1.T3"
        )
        assert not any(
            db.certain("R", "Smith", "D1", t) for t in ("T1", "T2", "T3")
        )
        assert db.possible_values("R", ("Smith", "D1", None), 2) >= frozenset(
            {"T1", "T2", "T3"}
        )

    def test_retract(self, db):
        db.retract("R", "Jones", "D1", "T2")
        assert not db.certain("R", "Jones", "D1", "T2")
        assert not db.possible("R", "Jones", "D1", "T2")
        assert ("R", ("Jones", "D1", "T2")) not in [
            (a.relation, a.args) for a in db.store
        ]

    def test_forget(self, db):
        db.forget("R", "Jones", "D1", "T2")
        assert not db.certain("R", "Jones", "D1", "T2")
        assert db.possible("R", "Jones", "D1", "T2")  # masked, not denied


class TestBindings:
    def test_pattern_matching_against_store(self, db):
        bindings = db.bindings(("R", var("x"), var("y"), ANY))
        assert {tuple(sorted(b.items())) for b in bindings} == {
            (("x", "Jones"), ("y", "D1")),
            (("x", "Smith"), ("y", "D2")),
        }

    def test_environment_restricts(self, db):
        bindings = db.bindings(("R", var("x"), var("y"), ANY), {"x": "Jones"})
        assert bindings == [{"x": "Jones", "y": "D1"}]

    def test_repeated_variable_must_corefer(self, db, schema):
        db.tell(("R", "Jones", "D2", "T1"))
        # No atom has N == T slot value, trivially; use a same-typed pair:
        bindings = db.bindings(("R", var("x"), "D1", ANY))
        assert bindings == [{"x": "Jones"}]

    def test_null_valued_position_does_not_bind(self, db, schema):
        telno = schema.algebra.named("telno")
        u = db.unknown(telno)
        db.tell(db.atom("R", "Smith", "D1", u))
        bindings = db.bindings(("R", "Smith", "D1", var("t")))
        assert bindings == []  # the value is unknown; no external binding


class TestJonesExample:
    """Section 5.1.1: 'Jones has a new telephone number.'"""

    def test_full_flow(self, db, schema):
        telno = schema.algebra.named("telno")
        bindings = db.where_update(
            pattern=("R", "Jones", var("y"), ANY),
            action=("R", "Jones", var("y"), exists(telno)),
        )
        # Unique department -> exactly one binding.
        assert bindings == [{"y": "D1"}]
        # The old number is no longer certain -- but remains possible.
        assert not db.certain("R", "Jones", "D1", "T2")
        assert db.possible("R", "Jones", "D1", "T2")
        # *Some* number is certain.
        assert db.grounded.is_certain(
            " | ".join(f"R.Jones.D1.T{i}" for i in range(1, 5))
        )
        # Every number is possible.
        assert db.possible_values("R", ("Jones", "D1", None), 2) == frozenset(
            {"T1", "T2", "T3", "T4"}
        )
        # Smith's record is untouched (the mask covered only Jones/D1 letters).
        assert db.certain("R", "Smith", "D2", "T4")

    def test_compact_store_replaced_by_open_atom(self, db, schema):
        telno = schema.algebra.named("telno")
        db.where_update(
            pattern=("R", "Jones", var("y"), ANY),
            action=("R", "Jones", var("y"), exists(telno)),
        )
        jones_atoms = [a for a in db.store if a.args[0] == "Jones"]
        assert len(jones_atoms) == 1
        assert not jones_atoms[0].is_ground()

    def test_two_departments_two_bindings(self, db, schema):
        telno = schema.algebra.named("telno")
        db.tell(("R", "Jones", "D2", "T1"))
        bindings = db.where_update(
            pattern=("R", "Jones", var("y"), ANY),
            action=("R", "Jones", var("y"), exists(telno)),
        )
        assert sorted(b["y"] for b in bindings) == ["D1", "D2"]

    def test_representation_sizes(self, db, schema):
        """The efficiency claim: the compact store stays O(1) per fact
        while the grounded state's vocabulary scales with the domain."""
        telno = schema.algebra.named("telno")
        before = db.compact_size()
        db.where_update(
            pattern=("R", "Jones", var("y"), ANY),
            action=("R", "Jones", var("y"), exists(telno)),
        )
        after = db.compact_size()
        assert after == before  # one atom replaced by one atom
        assert len(db.grounding.vocabulary) == 16  # 2*2*4 grounded letters


class TestGroundedMirrorOptional:
    def test_compact_only_mode(self, schema):
        db = RelationalDatabase(schema, grounded=False)
        db.tell(("R", "Jones", "D1", "T2"))
        assert db.grounded is None
        assert db.certain("R", "Jones", "D1", "T2")
        assert db.grounded_size() == 0

    def test_compact_only_certainty_requires_unique_denotation(self, schema):
        telno = schema.algebra.named("telno")
        db = RelationalDatabase(schema, grounded=False)
        u = db.unknown(telno)
        db.tell(db.atom("R", "Jones", "D1", u))
        assert not db.certain("R", "Jones", "D1", "T2")

    def test_instance_backend_mirror(self, schema):
        db = RelationalDatabase(schema, backend="instance")
        db.tell(("R", "Jones", "D1", "T2"))
        assert db.certain("R", "Jones", "D1", "T2")
