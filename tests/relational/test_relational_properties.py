"""Property-based tests for the relational layer."""

import random

from hypothesis import given, settings, strategies as st

from repro.relational.atoms import OpenAtom, atom_valuations
from repro.relational.constants import CategoryExpr
from repro.relational.grounding import Grounding
from repro.relational.schema import RelationalSchema


def make_schema():
    return RelationalSchema.build(
        constants={
            "person": ["Jones", "Smith"],
            "dept": ["D1", "D2"],
            "telno": ["T1", "T2", "T3"],
        },
        relations={"R": [("N", "person"), ("D", "dept"), ("T", "telno")]},
    )


SCHEMA = make_schema()
GROUNDING = Grounding(SCHEMA)

people = st.sampled_from(["Jones", "Smith"])
depts = st.sampled_from(["D1", "D2"])
phones = st.sampled_from(["T1", "T2", "T3"])
ground_facts = st.tuples(people, depts, phones)


@given(ground_facts)
@settings(max_examples=60, deadline=None)
def test_proposition_name_roundtrip(args):
    name = GROUNDING.proposition_name("R", args)
    assert GROUNDING.fact_of(name) == ("R", args)
    assert name in GROUNDING.vocabulary


@given(ground_facts)
@settings(max_examples=60, deadline=None)
def test_ground_atom_formula_is_its_variable(args):
    formula = GROUNDING.atom_formula(OpenAtom("R", args))
    assert str(formula) == GROUNDING.proposition_name("R", args)


@given(people, depts, st.sets(phones, max_size=2))
@settings(max_examples=60, deadline=None)
def test_open_atom_disjunction_size_equals_denotation(person, dept, excluded):
    schema = make_schema()
    grounding = Grounding(schema)
    telno = schema.algebra.named("telno")
    denotation_size = 3 - len(excluded)
    if denotation_size == 0:
        return
    u = schema.dictionary.activate(CategoryExpr(telno, ee=excluded))
    formula = grounding.atom_formula(OpenAtom("R", (person, dept, u)))
    assert len(formula.props()) == denotation_size


@given(st.sets(phones, min_size=1, max_size=3), st.sets(phones, min_size=1, max_size=3))
@settings(max_examples=60, deadline=None)
def test_dictionary_intersection_is_set_intersection(left_allowed, right_allowed):
    schema = make_schema()
    telno = schema.algebra.named("telno")
    u1 = schema.dictionary.activate(
        CategoryExpr(schema.algebra.empty, ie=left_allowed)
    )
    u2 = schema.dictionary.activate(
        CategoryExpr(schema.algebra.empty, ie=right_allowed)
    )
    assert schema.dictionary.intersect(u1, u2) == frozenset(left_allowed) & frozenset(
        right_allowed
    )


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=30, deadline=None)
def test_shared_null_valuations_covary(seed):
    rng = random.Random(seed)
    schema = make_schema()
    telno = schema.algebra.named("telno")
    u = schema.dictionary.activate(CategoryExpr(telno))
    person = rng.choice(["Jones", "Smith"])
    atoms = [
        OpenAtom("R", (person, "D1", u)),
        OpenAtom("R", (person, "D2", u)),
    ]
    for valuation in atom_valuations(atoms, schema.dictionary, schema):
        grounded = [a.instantiate(valuation) for a in atoms]
        # The same null takes the same value in both atoms.
        assert grounded[0].args[2] == grounded[1].args[2]
