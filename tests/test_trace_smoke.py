"""CI smoke job: one real experiment run with ``--trace-out`` must emit
JSON-lines that pass the schema check, so exporter drift fails CI rather
than silently corrupting bench artifacts.

Kept fast by running only E1 (sub-second); marked ``smoke`` so it can be
selected alone with ``pytest -m smoke``.
"""

import pytest

from benchmarks.run_experiments import main
from repro.obs import core
from repro.obs.export import counters_from_jsonl, spans_from_jsonl, validate_jsonl


@pytest.fixture(autouse=True)
def clean_obs():
    yield
    core.disable()
    core.reset()


@pytest.mark.smoke
def test_e01_trace_out_round_trips_and_validates(tmp_path, capsys):
    trace_path = tmp_path / "trace.jsonl"
    code = main(["E1", "--trace-out", str(trace_path)])
    out = capsys.readouterr().out
    assert code == 0
    assert "E1" in out
    assert f"trace written to {trace_path}" in out

    text = trace_path.read_text()
    errors = validate_jsonl(text)
    assert errors == [], "\n".join(errors)

    roots = spans_from_jsonl(text)
    assert any(root.name == "experiment.E1" for root in roots)
    span_names = {span.name for root in roots for _, span in root.walk()}
    assert "blu.c.assert" in span_names

    counters = counters_from_jsonl(text)
    assert counters.get("blu.c.assert.calls") > 0
    assert counters.get("blu.c.assert.clauses_out") > 0


@pytest.mark.smoke
def test_runner_without_tracing_leaves_obs_disabled(tmp_path, capsys):
    code = main(["E6"])
    capsys.readouterr()
    assert code == 0
    assert not core.is_enabled()
