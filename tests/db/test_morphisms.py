"""Tests for deterministic morphisms (repro.db.morphisms)."""

import pytest

from repro.db.instances import WorldSet
from repro.db.morphisms import Morphism
from repro.db.schema import DbSchema
from repro.errors import SchemaError, VocabularyMismatchError
from repro.logic.formula import FALSE, TRUE, Var, var
from repro.logic.parser import parse_formula
from repro.logic.propositions import Vocabulary
from repro.logic.structures import all_worlds, satisfies

V3 = Vocabulary.standard(3)
V2 = Vocabulary.standard(2)


class TestConstruction:
    def test_identity_defaults(self):
        ident = Morphism.identity(V3)
        for name in V3.names:
            assert ident.image_of(name) == Var(name)

    def test_partial_assignment_defaults_to_identity(self):
        f = Morphism(V3, V3, {"A1": TRUE})
        assert f.image_of("A2") == Var("A2")

    def test_cross_schema_requires_full_assignment(self):
        # Target letter B1 has no source counterpart: must be mapped.
        target = Vocabulary(["B1"])
        with pytest.raises(SchemaError, match="no image"):
            Morphism(V3, target, {})
        f = Morphism(V3, target, {"B1": parse_formula("A1 & A2")})
        assert f.image_of("B1") == parse_formula("A1 & A2")

    def test_image_outside_source_rejected(self):
        with pytest.raises(SchemaError, match="outside the source"):
            Morphism(V2, V2, {"A1": parse_formula("A3")})

    def test_non_target_letters_rejected(self):
        with pytest.raises(SchemaError, match="non-target"):
            Morphism(V2, V2, {"A9": TRUE})


class TestStructureMap:
    def test_apply_world_evaluates_images(self):
        f = Morphism(V3, V3, {"A1": parse_formula("A2 & A3")})
        # world A2=1, A3=1, A1=0 -> A1 becomes 1.
        assert f.apply_world(0b110) == 0b111
        assert f.apply_world(0b010) == 0b010

    def test_apply_world_set_is_pointwise(self):
        f = Morphism(V3, V3, {"A1": TRUE})
        ws = WorldSet(V3, {0b000, 0b010})
        assert f.apply_world_set(ws) == WorldSet(V3, {0b001, 0b011})

    def test_apply_world_set_vocabulary_check(self):
        f = Morphism(V3, V3, {})
        with pytest.raises(VocabularyMismatchError):
            f.apply_world_set(WorldSet.total(V2))

    def test_bar_substitutes(self):
        f = Morphism(V3, V3, {"A1": parse_formula("~A2")})
        assert f.bar(parse_formula("A1 | A3")) == parse_formula("~A2 | A3")

    def test_bar_rejects_non_target_formula(self):
        f = Morphism(V2, V2, {})
        with pytest.raises(VocabularyMismatchError):
            f.bar(parse_formula("A3"))

    def test_bar_and_prime_are_adjoint(self):
        # s-bar(f-bar(phi)) == f'(s)-bar(phi): the defining property.
        f = Morphism(V3, V3, {"A1": parse_formula("A2 | A3"), "A2": FALSE})
        phi = parse_formula("A1 -> (A2 | ~A3)")
        for world in all_worlds(V3):
            assert satisfies(V3, world, f.bar(phi)) == satisfies(
                V3, f.apply_world(world), phi
            )


class TestComposition:
    def test_fact_132_composition_commutes_with_prime(self):
        f = Morphism(V3, V3, {"A1": parse_formula("A2")})
        g = Morphism(V3, V3, {"A2": parse_formula("~A1"), "A3": TRUE})
        composed = f.then(g)
        for world in all_worlds(V3):
            assert composed.apply_world(world) == g.apply_world(f.apply_world(world))

    def test_composition_across_vocabularies(self):
        target = Vocabulary(["B1"])
        f = Morphism(V3, V2, {"A1": parse_formula("A1 & A2"), "A2": parse_formula("A3")})
        g = Morphism(V2, target, {"B1": parse_formula("A1 | A2")})
        composed = f.then(g)
        assert composed.source == V3 and composed.target == target
        for world in all_worlds(V3):
            assert composed.apply_world(world) == g.apply_world(f.apply_world(world))

    def test_composition_type_mismatch(self):
        f = Morphism(V3, V3, {})
        g = Morphism(V2, V2, {})
        with pytest.raises(VocabularyMismatchError):
            f.then(g)

    def test_identity_is_neutral(self):
        f = Morphism(V3, V3, {"A1": parse_formula("A2 & A3")})
        ident = Morphism.identity(V3)
        assert ident.then(f) == f
        assert f.then(ident) == f


class TestCorrectness:
    def test_correct_morphism(self):
        schema = DbSchema.of(2, constraints=["A1 -> A2"])
        # Forcing A2 true preserves the constraint.
        f = Morphism(V2, V2, {"A2": TRUE})
        assert f.is_correct(schema, schema)

    def test_incorrect_morphism(self):
        schema = DbSchema.of(2, constraints=["A1 -> A2"])
        # Forcing A2 false breaks legality of worlds with A1 true.
        f = Morphism(V2, V2, {"A2": FALSE})
        assert not f.is_correct(schema, schema)

    def test_composition_of_correct_is_correct(self):
        schema = DbSchema.of(2, constraints=["A1 -> A2"])
        f = Morphism(V2, V2, {"A2": TRUE})
        g = Morphism(V2, V2, {"A1": var("A1") & var("A2")})
        assert g.is_correct(schema, schema)
        assert f.then(g).is_correct(schema, schema)

    def test_correctness_schema_vocabulary_check(self):
        f = Morphism(V2, V2, {})
        with pytest.raises(VocabularyMismatchError):
            f.is_correct(DbSchema.of(3), DbSchema.of(2))


class TestIdentityAndRepr:
    def test_equality_and_hash(self):
        f1 = Morphism(V2, V2, {"A1": TRUE})
        f2 = Morphism(V2, V2, {"A1": TRUE})
        assert f1 == f2 and hash(f1) == hash(f2)
        assert f1 != Morphism(V2, V2, {"A1": FALSE})

    def test_repr_shows_changes_only(self):
        assert "A1 <- 1" in repr(Morphism(V2, V2, {"A1": TRUE}))
        assert repr(Morphism.identity(V2)) == "Morphism(identity)"
