"""Tests for deterministic update morphisms (repro.db.updates)."""

import pytest

from repro.db.updates import (
    delete_atom,
    insert_atom,
    insert_literals,
    modify_atom,
    modify_literals,
)
from repro.errors import InconsistentLiteralsError
from repro.logic.clauses import make_literal
from repro.logic.propositions import Vocabulary
from repro.logic.structures import all_worlds, get_bit

VOCAB = Vocabulary.standard(3)
A1, A2, A3 = 0, 1, 2


class TestInsertAtom:
    def test_forces_letter_true(self):
        f = insert_atom(VOCAB, "A1")
        for world in all_worlds(VOCAB):
            assert get_bit(f.apply_world(world), A1)

    def test_other_letters_untouched(self):
        f = insert_atom(VOCAB, "A1")
        for world in all_worlds(VOCAB):
            image = f.apply_world(world)
            assert get_bit(image, A2) == get_bit(world, A2)
            assert get_bit(image, A3) == get_bit(world, A3)

    def test_idempotent(self):
        f = insert_atom(VOCAB, "A2")
        for world in all_worlds(VOCAB):
            assert f.apply_world(f.apply_world(world)) == f.apply_world(world)

    def test_unknown_letter_rejected(self):
        from repro.errors import VocabularyError

        with pytest.raises(VocabularyError):
            insert_atom(VOCAB, "A9")


class TestDeleteAtom:
    def test_forces_letter_false(self):
        f = delete_atom(VOCAB, "A3")
        for world in all_worlds(VOCAB):
            assert not get_bit(f.apply_world(world), A3)

    def test_delete_is_insert_of_negation(self):
        # Extension convention of Section 1.3: insert[~A] = delete[A].
        by_delete = delete_atom(VOCAB, "A2")
        by_insert = insert_literals(VOCAB, [make_literal(A2, positive=False)])
        for world in all_worlds(VOCAB):
            assert by_delete.apply_world(world) == by_insert.apply_world(world)


class TestModifyAtom:
    """modify[Ai, Aj]: Ai <- 0, Aj <- Ai | Aj (Definition 1.3.3(c))."""

    def test_truth_table(self):
        f = modify_atom(VOCAB, "A1", "A2")
        for world in all_worlds(VOCAB):
            image = f.apply_world(world)
            assert not get_bit(image, A1)
            assert get_bit(image, A2) == (get_bit(world, A1) or get_bit(world, A2))
            assert get_bit(image, A3) == get_bit(world, A3)

    def test_modify_to_self_is_identity(self):
        f = modify_atom(VOCAB, "A1", "A1")
        for world in all_worlds(VOCAB):
            assert f.apply_world(world) == world

    def test_absent_tuple_stays_absent(self):
        f = modify_atom(VOCAB, "A1", "A2")
        # A1 false, A2 false: nothing moves.
        assert f.apply_world(0b000) == 0b000


class TestInsertLiterals:
    def test_mixed_polarity_insert(self):
        f = insert_literals(VOCAB, [make_literal(A1), make_literal(A3, False)])
        for world in all_worlds(VOCAB):
            image = f.apply_world(world)
            assert get_bit(image, A1)
            assert not get_bit(image, A3)
            assert get_bit(image, A2) == get_bit(world, A2)

    def test_empty_set_is_identity(self):
        f = insert_literals(VOCAB, [])
        for world in all_worlds(VOCAB):
            assert f.apply_world(world) == world

    def test_inconsistent_set_rejected(self):
        with pytest.raises(InconsistentLiteralsError):
            insert_literals(VOCAB, [1, -1])


class TestModifyLiterals:
    """Prose semantics of 1.3.4(b): when all of Phi1 holds, delete Phi1
    then insert Phi2; otherwise identity."""

    def test_precondition_satisfied_moves(self):
        f = modify_literals(VOCAB, [make_literal(A1)], [make_literal(A2)])
        # A1 true: A1 deleted (false), A2 inserted (true).
        assert f.apply_world(0b001) == 0b010
        assert f.apply_world(0b011) == 0b010

    def test_precondition_failed_is_identity(self):
        f = modify_literals(VOCAB, [make_literal(A1)], [make_literal(A2)])
        assert f.apply_world(0b000) == 0b000
        assert f.apply_world(0b100) == 0b100

    def test_negative_literal_precondition(self):
        f = modify_literals(
            VOCAB, [make_literal(A1, False)], [make_literal(A3)]
        )
        # ~A1 holds: delete ~A1 (force A1 true) and insert A3.
        assert f.apply_world(0b000) == 0b101
        # ~A1 fails: identity.
        assert f.apply_world(0b001) == 0b001

    def test_overlap_insert_wins(self):
        # Phi1 = {A1}, Phi2 = {A1}: delete then insert leaves A1 true.
        f = modify_literals(VOCAB, [make_literal(A1)], [make_literal(A1)])
        assert f.apply_world(0b001) == 0b001

    def test_multi_literal_precondition_requires_all(self):
        f = modify_literals(
            VOCAB, [make_literal(A1), make_literal(A2)], [make_literal(A3)]
        )
        assert f.apply_world(0b011) == 0b100  # both hold: move
        assert f.apply_world(0b001) == 0b001  # only A1 holds: identity

    def test_empty_precondition_always_fires(self):
        f = modify_literals(VOCAB, [], [make_literal(A3)])
        for world in all_worlds(VOCAB):
            assert get_bit(f.apply_world(world), A3)

    def test_inconsistent_arguments_rejected(self):
        with pytest.raises(InconsistentLiteralsError):
            modify_literals(VOCAB, [1, -1], [])
        with pytest.raises(InconsistentLiteralsError):
            modify_literals(VOCAB, [], [2, -2])

    def test_agrees_with_sequential_delete_insert_on_satisfying_worlds(self):
        pre = [make_literal(A1), make_literal(A2, False)]
        post = [make_literal(A2)]
        f = modify_literals(VOCAB, pre, post)
        delete_then_insert = insert_literals(
            VOCAB, [-lit for lit in pre]
        ).then(insert_literals(VOCAB, post))
        for world in all_worlds(VOCAB):
            pre_holds = get_bit(world, A1) and not get_bit(world, A2)
            expected = delete_then_insert.apply_world(world) if pre_holds else world
            assert f.apply_world(world) == expected


class TestClauseDelta:
    def test_delta_splits_symmetric_difference(self):
        from repro.db.updates import apply_clause_delta, clause_delta
        from repro.logic.clauses import ClauseSet

        vocab = Vocabulary.standard(4)
        old = ClauseSet.from_strs(vocab, ["A1 | A2", "A3"])
        new = ClauseSet.from_strs(vocab, ["A1 | A2", "~A3 | A4"])
        inserts, deletes = clause_delta(old, new)
        assert inserts == frozenset({frozenset({-3, 4})})
        assert deletes == frozenset({frozenset({3})})
        assert apply_clause_delta(old, inserts, deletes) == new

    def test_empty_delta_returns_same_object(self):
        from repro.db.updates import apply_clause_delta, clause_delta

        from repro.logic.clauses import ClauseSet

        cs = ClauseSet.from_strs(VOCAB, ["A1 | A2"])
        inserts, deletes = clause_delta(cs, cs)
        assert inserts == deletes == frozenset()
        assert apply_clause_delta(cs, inserts, deletes) is cs

    def test_vocabulary_mismatch_rejected(self):
        from repro.db.updates import clause_delta
        from repro.errors import VocabularyError
        from repro.logic.clauses import ClauseSet

        other = Vocabulary.standard(7)
        with pytest.raises(VocabularyError):
            clause_delta(
                ClauseSet.tautology(VOCAB), ClauseSet.tautology(other)
            )
