"""Property-based tests for the database layer.

Invariants checked:
* insert/delete/modify interact correctly with world sets (monotonicity,
  idempotence where the paper implies it);
* Facts 1.3.2 / 1.4.2 (composition commutes with the structure maps);
* Theorem 1.5.4 on random formulas;
* the mask-assert decomposition of insertion (the core of Theorem 3.1.4):
  inserting Phi equals saturating on Dep[Phi] then intersecting with Mod[Phi].
"""

from hypothesis import given, settings, strategies as st

from repro.db.instances import WorldSet
from repro.db.literal_base import insert_update, inset_prop_indices
from repro.db.masks import SimpleMask, congruence_of, masks_equal
from repro.db.morphisms import Morphism
from repro.db.nondeterministic import NondetMorphism
from repro.logic.formula import And, Iff, Implies, Not, Or, Var
from repro.logic.propositions import Vocabulary

VOCAB = Vocabulary.standard(3)
N = len(VOCAB)

variables = st.sampled_from([Var(name) for name in VOCAB.names])
formulas = st.recursive(
    variables,
    lambda children: st.one_of(
        children.map(Not),
        st.tuples(children, children).map(And),
        st.tuples(children, children).map(Or),
        st.tuples(children, children).map(lambda p: Implies(*p)),
        st.tuples(children, children).map(lambda p: Iff(*p)),
    ),
    max_leaves=6,
)

worlds = st.integers(min_value=0, max_value=(1 << N) - 1)
world_sets = st.frozensets(worlds, max_size=8).map(lambda ws: WorldSet(VOCAB, ws))

simple_morphisms = st.fixed_dictionaries(
    {},
    optional={name: formulas for name in VOCAB.names},
).map(lambda assignment: Morphism(VOCAB, VOCAB, assignment))


@given(formulas, world_sets)
@settings(max_examples=100, deadline=None)
def test_insert_is_mask_then_assert(formula, state):
    """The mask-assert paradigm at the instance level (Theorem 3.1.4 core)."""
    update = insert_update(VOCAB, [formula])
    direct = update.apply_world_set(state)
    dep = inset_prop_indices(VOCAB, [formula])
    mod = WorldSet.from_formulas(VOCAB, [formula])
    via_mask_assert = state.saturate(dep).intersection(mod)
    assert direct == via_mask_assert


@given(formulas)
@settings(max_examples=80, deadline=None)
def test_theorem_154_random_formulas(formula):
    update = insert_update(VOCAB, [formula])
    if len(update) == 0:
        return  # unsatisfiable formula: congruence undefined in the paper
    expected = SimpleMask(VOCAB, inset_prop_indices(VOCAB, [formula]))
    assert masks_equal(congruence_of(update), expected)


@given(formulas, world_sets)
@settings(max_examples=80, deadline=None)
def test_insert_result_satisfies_formula(formula, state):
    update = insert_update(VOCAB, [formula])
    result = update.apply_world_set(state)
    assert result.satisfies_everywhere(formula)


@given(formulas, world_sets)
@settings(max_examples=80, deadline=None)
def test_insert_is_idempotent_on_world_sets(formula, state):
    update = insert_update(VOCAB, [formula])
    once = update.apply_world_set(state)
    twice = update.apply_world_set(once)
    assert twice == once


@given(formulas, world_sets, world_sets)
@settings(max_examples=60, deadline=None)
def test_insert_distributes_over_union(formula, left, right):
    """F-bar is defined pointwise, hence a complete join morphism."""
    update = insert_update(VOCAB, [formula])
    assert update.apply_world_set(left.union(right)) == update.apply_world_set(
        left
    ).union(update.apply_world_set(right))


@given(simple_morphisms, simple_morphisms, worlds)
@settings(max_examples=100, deadline=None)
def test_fact_132_composition(f, g, world):
    assert f.then(g).apply_world(world) == g.apply_world(f.apply_world(world))


@given(
    st.lists(simple_morphisms, min_size=1, max_size=3),
    st.lists(simple_morphisms, min_size=1, max_size=3),
    world_sets,
)
@settings(max_examples=60, deadline=None)
def test_fact_142_composition(fs, gs, state):
    F = NondetMorphism(fs)
    G = NondetMorphism(gs)
    assert F.then(G).apply_world_set(state) == G.apply_world_set(
        F.apply_world_set(state)
    )


@given(world_sets, st.frozensets(st.integers(min_value=0, max_value=N - 1)))
@settings(max_examples=80, deadline=None)
def test_saturation_absorbs_dependency(state, indices):
    """After masking P, the state no longer depends on P."""
    masked = state.saturate(indices)
    assert not (masked.dependency_indices() & frozenset(indices))
