"""Tests for queries-as-morphisms (repro.db.queries)."""

import pytest

from repro.db.instances import WorldSet
from repro.db.masks import SimpleMask, as_simple_mask, masks_equal
from repro.db.queries import (
    derived_letter,
    projection,
    renaming,
    view_dependency_mask,
)
from repro.errors import SchemaError
from repro.logic.propositions import Vocabulary

V3 = Vocabulary.standard(3)


class TestProjection:
    def test_keeps_letters_in_source_order(self):
        view = projection(V3, ["A3", "A1"])
        assert view.target.names == ("A1", "A3")

    def test_world_action_drops_bits(self):
        view = projection(V3, ["A1", "A3"])
        # (A1=1, A2=1, A3=0) -> (A1=1, A3=0)
        assert view.apply_world(0b011) == 0b01
        assert view.apply_world(0b110) == 0b10

    def test_query_on_incomplete_database(self):
        view = projection(V3, ["A1"])
        state = WorldSet.from_texts(V3, ["A1 <-> A2"])
        answers = view.apply_world_set(state)
        # Both answers possible: the projection is fully open.
        assert answers == WorldSet.total(view.target)

    def test_certain_answer_survives_projection(self):
        view = projection(V3, ["A1"])
        state = WorldSet.from_texts(V3, ["A1", "A2 | A3"])
        answers = view.apply_world_set(state)
        assert answers == WorldSet.from_texts(view.target, ["A1"])

    def test_unknown_letters_rejected(self):
        with pytest.raises(SchemaError):
            projection(V3, ["A9"])

    def test_projection_mask_is_simple_on_dropped_letters(self):
        view = projection(V3, ["A1"])
        mask = view_dependency_mask(view)
        assert masks_equal(mask, SimpleMask(V3, [1, 2]))
        assert as_simple_mask(mask) == SimpleMask(V3, [1, 2])


class TestRenaming:
    def test_bijective_relabel(self):
        view = renaming(V3, {"A1": "X", "A2": "Y"})
        assert view.target.names == ("X", "Y", "A3")
        assert view.apply_world(0b101) == 0b101  # bits unchanged

    def test_composes_with_projection(self):
        relabel = renaming(V3, {"A1": "X"})
        keep_x = projection(relabel.target, ["X"])
        composed = relabel.then(keep_x)
        assert composed.target.names == ("X",)
        assert composed.apply_world(0b001) == 0b1

    def test_non_injective_rejected(self):
        with pytest.raises(SchemaError, match="injective"):
            renaming(V3, {"A1": "X", "A2": "X"})

    def test_renaming_masks_nothing(self):
        view = renaming(V3, {"A1": "X"})
        assert masks_equal(view_dependency_mask(view), SimpleMask(V3, []))


class TestDerivedLetter:
    def test_definition_evaluated_per_world(self):
        view = derived_letter(V3, {"AnyAlarm": "A1 | A2 | A3"})
        assert view.apply_world(0b000) == 0b0
        assert view.apply_world(0b010) == 0b1

    def test_multiple_definitions(self):
        view = derived_letter(
            V3, {"Both": "A1 & A2", "Either": "A1 | A2"}
        )
        assert view.target.names == ("Both", "Either")
        assert view.apply_world(0b011) == 0b11
        assert view.apply_world(0b001) == 0b10

    def test_general_view_mask_need_not_be_simple(self):
        # The view A1 & A2 conflates worlds in a value-dependent way.
        view = derived_letter(V3, {"Both": "A1 & A2"})
        mask = view_dependency_mask(view)
        assert as_simple_mask(mask) is None

    def test_incomplete_query_answers(self):
        view = derived_letter(V3, {"AnyAlarm": "A1 | A2 | A3"})
        state = WorldSet.from_texts(V3, ["A2"])
        answers = view.apply_world_set(state)
        # A2 certain -> the alarm is certainly on.
        assert answers == WorldSet.from_texts(view.target, ["AnyAlarm"])
