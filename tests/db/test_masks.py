"""Tests for masks and congruences (repro.db.masks), incl. Theorem 1.5.4."""

import pytest

from repro.db.instances import WorldSet
from repro.db.literal_base import insert_update, inset_prop_indices
from repro.db.masks import (
    KeyMask,
    SimpleMask,
    as_simple_mask,
    congruence_of,
    mask_morphism,
    masks_equal,
)
from repro.db.morphisms import Morphism
from repro.db.nondeterministic import NondetMorphism
from repro.errors import VocabularyError, VocabularyMismatchError
from repro.logic.formula import TRUE
from repro.logic.parser import parse_formula
from repro.logic.propositions import Vocabulary

V3 = Vocabulary.standard(3)


class TestSimpleMask:
    def test_equivalence_is_agreement_off_p(self):
        m = SimpleMask.of_names(V3, ["A1"])
        assert m.equivalent(0b000, 0b001)
        assert not m.equivalent(0b000, 0b010)

    def test_empty_mask_is_identity_relation(self):
        m = SimpleMask(V3, [])
        assert all(
            m.equivalent(w, v) == (w == v) for w in range(8) for v in range(8)
        )

    def test_full_mask_relates_everything(self):
        m = SimpleMask(V3, [0, 1, 2])
        assert m.equivalent(0b000, 0b111)

    def test_saturate_matches_world_saturation(self):
        m = SimpleMask(V3, [1])
        ws = WorldSet(V3, {0b000, 0b101})
        assert m.saturate(ws) == ws.saturate([1])

    def test_partition_block_sizes(self):
        m = SimpleMask(V3, [0, 2])
        blocks = m.partition()
        assert len(blocks) == 2
        assert all(len(b) == 4 for b in blocks)

    def test_union_of_masks(self):
        m = SimpleMask(V3, [0]).union(SimpleMask(V3, [2]))
        assert m.indices == frozenset({0, 2})

    def test_invalid_index_rejected(self):
        with pytest.raises(VocabularyError):
            SimpleMask(V3, [5])

    def test_vocabulary_mismatch_on_saturate(self):
        m = SimpleMask(V3, [0])
        with pytest.raises(VocabularyMismatchError):
            m.saturate(WorldSet.total(Vocabulary.standard(2)))

    def test_names_accessor(self):
        assert SimpleMask.of_names(V3, ["A2", "A3"]).names == frozenset({"A2", "A3"})


class TestMaskMorphism:
    def test_component_count(self):
        assert len(mask_morphism(V3, [0, 1])) == 4

    def test_action_saturates(self):
        F = mask_morphism(V3, [0])
        S = WorldSet(V3, {0b010})
        assert F.apply_world_set(S) == S.saturate([0])

    def test_congruence_is_the_simple_mask(self):
        # Definition 1.5.3(b): the congruence of mask[P] is s--mask[P].
        for indices in ([], [0], [1, 2], [0, 1, 2]):
            F = mask_morphism(V3, indices)
            assert masks_equal(congruence_of(F), SimpleMask(V3, indices))


class TestCongruence:
    def test_identity_morphism_has_discrete_congruence(self):
        F = NondetMorphism.of(Morphism.identity(V3))
        assert masks_equal(congruence_of(F), SimpleMask(V3, []))

    def test_constant_morphism_has_total_congruence(self):
        F = NondetMorphism.of(
            Morphism(V3, V3, {"A1": TRUE, "A2": TRUE, "A3": TRUE})
        )
        assert masks_equal(congruence_of(F), SimpleMask(V3, [0, 1, 2]))

    def test_congruence_of_non_simple_morphism(self):
        # A1 <- A1 & A2 merges (A1=1,A2=0) with (A1=0,A2=0) but is not a
        # simple mask: the merge depends on A2's value.
        F = NondetMorphism.of(
            Morphism(V3, V3, {"A1": parse_formula("A1 & A2")})
        )
        assert as_simple_mask(congruence_of(F)) is None


class TestTheorem154:
    """Congruence(insert[Phi]) = s--mask[Prop[Inset[Phi]]]."""

    CASES = [
        ["A1 | A2"],
        ["A1"],
        ["A1 & A2"],
        ["A1 <-> A2"],
        ["A1 | ~A1"],          # tautology: identity congruence, empty mask
        ["(A1 | A2) & (A1 | ~A2)"],  # semantically just A1
        ["A1 -> A3"],
        ["A1 | A2 | A3"],
    ]

    @pytest.mark.parametrize("texts", CASES, ids=[c[0] for c in CASES])
    def test_insert_congruence_is_simple_mask_on_inset_props(self, texts):
        update = insert_update(V3, texts)
        expected = SimpleMask(V3, inset_prop_indices(V3, texts))
        assert masks_equal(congruence_of(update), expected)

    @pytest.mark.parametrize("texts", CASES, ids=[c[0] for c in CASES])
    def test_recognised_as_simple(self, texts):
        update = insert_update(V3, texts)
        recognised = as_simple_mask(congruence_of(update))
        assert recognised == SimpleMask(V3, inset_prop_indices(V3, texts))


class TestKeyMask:
    def test_arbitrary_key_function(self):
        m = KeyMask(V3, lambda w: bin(w).count("1"))
        assert m.equivalent(0b011, 0b101)
        assert not m.equivalent(0b011, 0b111)

    def test_saturate_unions_touched_classes(self):
        m = KeyMask(V3, lambda w: bin(w).count("1"))
        out = m.saturate(WorldSet(V3, {0b001}))
        assert out == WorldSet(V3, {0b001, 0b010, 0b100})
