"""Tests for world sets / IDB[D] (repro.db.instances)."""

import pytest

from repro.db.instances import WorldSet
from repro.db.schema import DbSchema
from repro.errors import VocabularyMismatchError
from repro.logic.clauses import ClauseSet
from repro.logic.parser import parse_formula
from repro.logic.propositions import Vocabulary
from repro.logic.semantics import models_of_clauses

VOCAB = Vocabulary.standard(3)


class TestConstructors:
    def test_empty_and_total(self):
        assert len(WorldSet.empty(VOCAB)) == 0
        assert len(WorldSet.total(VOCAB)) == 8

    def test_singleton_eta_embedding(self):
        ws = WorldSet.singleton(VOCAB, 0b101)
        assert ws.worlds == frozenset({0b101})

    def test_from_assignment(self):
        ws = WorldSet.from_assignment(VOCAB, {"A1": True, "A2": False, "A3": True})
        assert ws.worlds == frozenset({0b101})

    def test_from_true_set(self):
        ws = WorldSet.from_true_set(VOCAB, ["A2"])
        assert ws.worlds == frozenset({0b010})

    def test_from_texts_is_mod(self):
        ws = WorldSet.from_texts(VOCAB, ["A1 | A2"])
        assert len(ws) == 6  # 3 assignments of (A1,A2) x 2 of A3

    def test_from_clause_set_matches_models(self):
        cs = ClauseSet.from_strs(VOCAB, ["A1", "~A2 | A3"])
        assert WorldSet.from_clause_set(cs).worlds == models_of_clauses(cs)

    def test_out_of_range_world_rejected(self):
        with pytest.raises(ValueError):
            WorldSet(VOCAB, [8])


class TestBooleanAlgebra:
    LEFT = WorldSet.from_texts(VOCAB, ["A1"])
    RIGHT = WorldSet.from_texts(VOCAB, ["A2"])

    def test_union_is_combine(self):
        assert self.LEFT.union(self.RIGHT) == WorldSet.from_texts(VOCAB, ["A1 | A2"])

    def test_intersection_is_assert(self):
        assert self.LEFT.intersection(self.RIGHT) == WorldSet.from_texts(
            VOCAB, ["A1 & A2"]
        )

    def test_complement(self):
        assert self.LEFT.complement() == WorldSet.from_texts(VOCAB, ["~A1"])

    def test_complement_involution(self):
        assert self.LEFT.complement().complement() == self.LEFT

    def test_difference_for_where_split(self):
        split_in = self.LEFT.intersection(self.RIGHT)
        split_out = self.LEFT.difference(self.RIGHT)
        assert split_in.union(split_out) == self.LEFT
        assert split_in.intersection(split_out) == WorldSet.empty(VOCAB)

    def test_vocabulary_mismatch_rejected(self):
        other = WorldSet.total(Vocabulary.standard(2))
        with pytest.raises(VocabularyMismatchError):
            self.LEFT.union(other)

    def test_subset_comparison(self):
        assert self.LEFT.intersection(self.RIGHT) <= self.LEFT


class TestMaskingAndDependency:
    def test_saturate_names_forgets_letter(self):
        ws = WorldSet.from_texts(VOCAB, ["A1 & A2"])
        masked = ws.saturate_names(["A1"])
        assert masked == WorldSet.from_texts(VOCAB, ["A2"])

    def test_dependency_of_mod(self):
        ws = WorldSet.from_texts(VOCAB, ["A1 | A2"])
        assert ws.dependency_names() == frozenset({"A1", "A2"})

    def test_dependency_after_mask_is_disjoint(self):
        ws = WorldSet.from_texts(VOCAB, ["A1 & (A2 | A3)"])
        masked = ws.saturate_names(["A2"])
        assert "A2" not in masked.dependency_names()

    def test_saturate_empty_set_stays_empty(self):
        assert WorldSet.empty(VOCAB).saturate([0, 1]) == WorldSet.empty(VOCAB)


class TestQueries:
    STATE = WorldSet.from_texts(VOCAB, ["A1 | A2", "A3"])

    def test_certain_and_possible_truth(self):
        assert self.STATE.satisfies_everywhere(parse_formula("A3"))
        assert not self.STATE.satisfies_everywhere(parse_formula("A1"))
        assert self.STATE.satisfies_somewhere(parse_formula("A1 & ~A2"))
        assert not self.STATE.satisfies_somewhere(parse_formula("~A3"))

    def test_certain_literals(self):
        assert "A3" in self.STATE.certain_literals()
        assert "A1" not in self.STATE.certain_literals()

    def test_restricted_to(self):
        restricted = self.STATE.restricted_to(parse_formula("A1"))
        assert restricted == self.STATE.intersection(WorldSet.from_texts(VOCAB, ["A1"]))

    def test_legal_filters_by_schema(self):
        schema = DbSchema.of(3, constraints=["~A1 | ~A2"])
        legal = self.STATE.legal(schema)
        assert all(not (w & 0b11 == 0b11) for w in legal)

    def test_legal_vocabulary_mismatch(self):
        with pytest.raises(VocabularyMismatchError):
            self.STATE.legal(DbSchema.of(2))


class TestRoundTrips:
    def test_to_clause_set_roundtrip(self):
        for texts in (["A1 | A2"], ["A1 & ~A3"], ["A1 <-> A2", "A3"]):
            ws = WorldSet.from_texts(VOCAB, texts)
            assert WorldSet.from_clause_set(ws.to_clause_set()) == ws

    def test_to_clause_set_of_empty_is_contradiction(self):
        assert WorldSet.empty(VOCAB).to_clause_set().has_empty_clause

    def test_assignments_iteration(self):
        ws = WorldSet.from_texts(VOCAB, ["A1 & A2 & A3"])
        assert list(ws.assignments()) == [{"A1": True, "A2": True, "A3": True}]

    def test_describe_truncates(self):
        text = WorldSet.total(VOCAB).describe(limit=2)
        assert "and 6 more" in text
        assert WorldSet.empty(VOCAB).describe() == "(no possible worlds)"
