"""Tests for literal bases and Inset (repro.db.literal_base).

Pins the paper's concrete values: Example 1.4.6 and Remark 1.4.7.
"""

from repro.db.instances import WorldSet
from repro.db.literal_base import (
    delete_update,
    insert_update,
    inset,
    inset_prop_indices,
    is_complete,
    is_irrelevant,
    is_minimal,
    literal_base,
    modify_update,
)
from repro.logic.clauses import make_literal
from repro.logic.propositions import Vocabulary

V3 = Vocabulary.standard(3)
V2 = Vocabulary.standard(2)

L = make_literal  # L(index, positive)


class TestLiteralBase:
    def test_members_entail_formula(self):
        members = set(literal_base(V2, ["A1 | A2"]))
        assert frozenset({L(0)}) in members            # {A1}
        assert frozenset({L(0), L(1, False)}) in members  # {A1, ~A2}
        assert frozenset() not in members
        assert frozenset({L(1, False)}) not in members    # {~A2} does not entail

    def test_example_146_superset_with_irrelevant_literal(self):
        # {A1, ~A2, A3} is in LB[{A1 | A2}] but A3 is irrelevant.
        members = set(literal_base(V3, ["A1 | A2"]))
        candidate = frozenset({L(0), L(1, False), L(2)})
        assert candidate in members

    def test_tautology_base_contains_empty_set(self):
        members = set(literal_base(V2, ["A1 | ~A1"]))
        assert frozenset() in members

    def test_contradiction_base_is_empty(self):
        assert set(literal_base(V2, ["A1 & ~A1"])) == set()


class TestIrrelevanceAndMinimality:
    def test_example_146_a3_is_irrelevant(self):
        assert is_irrelevant(V3, L(2), ["A1 | A2"])
        assert is_irrelevant(V3, L(2, False), ["A1 | A2"])

    def test_relevant_literal_detected(self):
        assert not is_irrelevant(V3, L(0), ["A1 | A2"])

    def test_minimal_rejects_superset_with_irrelevant(self):
        assert not is_minimal(V3, frozenset({L(0), L(1, False), L(2)}), ["A1 | A2"])

    def test_minimal_accepts_lean_base(self):
        assert is_minimal(V3, frozenset({L(0)}), ["A1 | A2"])

    def test_minimal_requires_membership(self):
        assert not is_minimal(V3, frozenset({L(2)}), ["A1 | A2"])


class TestInset:
    def test_example_146_exact_value(self):
        # Inset[{A1 | A2}] = {{A1,A2}, {A1,~A2}, {~A1,A2}}.
        expected = frozenset(
            {
                frozenset({L(0), L(1)}),
                frozenset({L(0), L(1, False)}),
                frozenset({L(0, False), L(1)}),
            }
        )
        assert inset(V3, ["A1 | A2"]) == expected

    def test_remark_147_tautology_gives_empty_assignment(self):
        assert inset(V3, ["A1 | ~A1"]) == frozenset({frozenset()})

    def test_contradiction_gives_empty_inset(self):
        assert inset(V3, ["A1 & ~A1"]) == frozenset()

    def test_single_literal(self):
        assert inset(V3, ["A1"]) == frozenset({frozenset({L(0)})})

    def test_semantic_dependence_only(self):
        # (A1 | A2) & (A1 | ~A2) == A1 -- A2 must not appear.
        assert inset(V3, ["(A1 | A2) & (A1 | ~A2)"]) == frozenset(
            {frozenset({L(0)})}
        )

    def test_inset_props_equal_dependency(self):
        for texts in (["A1 | A2"], ["A1 & A3"], ["A1 <-> A2"], ["A1 | ~A1"]):
            indices = inset_prop_indices(V3, texts)
            props = frozenset(
                abs(lit) - 1 for s in inset(V3, texts) for lit in s
            )
            assert props == indices

    def test_is_complete_matches_inset(self):
        assert is_complete(V3, frozenset({L(0), L(1)}), ["A1 | A2"])
        assert not is_complete(V3, frozenset({L(0)}), ["A1 | A2"])
        assert not is_complete(V3, frozenset({L(0), L(0, False)}), ["A1 | A2"])


class TestInsertUpdate:
    def test_example_146_three_way_split(self):
        update = insert_update(V3, ["A1 | A2"])
        assert len(update) == 3
        out = update.apply_world(0b000)
        assert out == WorldSet(V3, {0b001, 0b010, 0b011})

    def test_insert_preserves_untouched_letters(self):
        update = insert_update(V3, ["A1 | A2"])
        out = update.apply_world(0b100)
        assert all(w & 0b100 for w in out)

    def test_tautology_insert_is_identity(self):
        update = insert_update(V3, ["A1 | ~A1"])
        S = WorldSet(V3, {0b101, 0b010})
        assert update.apply_world_set(S) == S

    def test_contradiction_insert_empties_state(self):
        update = insert_update(V3, ["A1 & ~A1"])
        assert update.apply_world_set(WorldSet.total(V3)) == WorldSet.empty(V3)

    def test_result_always_satisfies_inserted_formula(self):
        from repro.logic.parser import parse_formula

        for text in ("A1 | A2", "A1 & A3", "A1 <-> A2"):
            update = insert_update(V3, [text])
            out = update.apply_world_set(WorldSet.total(V3))
            assert out.satisfies_everywhere(parse_formula(text))


class TestDeleteUpdate:
    def test_delete_atom_formula(self):
        update = delete_update(V3, ["A1"])
        out = update.apply_world_set(WorldSet.total(V3))
        assert all(not w & 0b001 for w in out)

    def test_delete_disjunction_forces_negation(self):
        from repro.logic.parser import parse_formula

        update = delete_update(V3, ["A1 | A2"])
        out = update.apply_world_set(WorldSet.total(V3))
        assert out.satisfies_everywhere(parse_formula("~A1 & ~A2"))

    def test_delete_of_contradiction_is_identity(self):
        # ~(A1 & ~A1) is a tautology: nothing to do.
        update = delete_update(V3, ["A1 & ~A1"])
        S = WorldSet(V3, {0b011})
        assert update.apply_world_set(S) == S


class TestModifyUpdate:
    def test_atomic_modify_matches_deterministic(self):
        from repro.db.updates import modify_literals

        update = modify_update(V3, ["A1"], ["A2"])
        det = modify_literals(V3, [L(0)], [L(1)])
        assert update.components == (det,)

    def test_modify_with_disjunctive_postcondition_splits(self):
        update = modify_update(V3, ["A1"], ["A2 | A3"])
        assert len(update) == 3

    def test_modify_leaves_nonmatching_worlds(self):
        update = modify_update(V3, ["A1"], ["A2"])
        S = WorldSet(V3, {0b000})
        assert update.apply_world_set(S) == S
