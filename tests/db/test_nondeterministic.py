"""Tests for nondeterministic morphisms (repro.db.nondeterministic)."""

import pytest

from repro.db.instances import WorldSet
from repro.db.morphisms import Morphism
from repro.db.nondeterministic import NondetMorphism
from repro.db.updates import insert_atom, insert_literals
from repro.errors import VocabularyMismatchError
from repro.logic.formula import FALSE, TRUE
from repro.logic.propositions import Vocabulary
from repro.logic.structures import all_worlds

VOCAB = Vocabulary.standard(3)


def force_a1(value):
    return Morphism(VOCAB, VOCAB, {"A1": TRUE if value else FALSE})


class TestConstruction:
    def test_components_deduplicated(self):
        F = NondetMorphism([force_a1(True), force_a1(True), force_a1(False)])
        assert len(F) == 2

    def test_empty_iterable_rejected(self):
        with pytest.raises(VocabularyMismatchError):
            NondetMorphism([])

    def test_empty_constructor(self):
        F = NondetMorphism.empty(VOCAB)
        assert len(F) == 0
        assert F.apply_world_set(WorldSet.total(VOCAB)) == WorldSet.empty(VOCAB)

    def test_mixed_vocabularies_rejected(self):
        other = Morphism.identity(Vocabulary.standard(2))
        with pytest.raises(VocabularyMismatchError):
            NondetMorphism([force_a1(True), other])

    def test_deterministic_embedding(self):
        F = NondetMorphism.of(insert_atom(VOCAB, "A1"))
        assert F.is_deterministic()


class TestAction:
    def test_apply_world_collects_all_images(self):
        F = NondetMorphism([force_a1(True), force_a1(False)])
        assert F.apply_world(0b000) == WorldSet(VOCAB, {0b000, 0b001})

    def test_apply_world_set_is_union_over_worlds(self):
        F = NondetMorphism([force_a1(True), force_a1(False)])
        S = WorldSet(VOCAB, {0b010, 0b100})
        expected = WorldSet(VOCAB, {0b010, 0b011, 0b100, 0b101})
        assert F.apply_world_set(S) == expected

    def test_embedding_preserves_deterministic_action(self):
        # Definition 1.4.3: {f} acts exactly like f.
        f = insert_literals(VOCAB, [1, -2])
        F = NondetMorphism.of(f)
        for world in all_worlds(VOCAB):
            assert F.apply_world(world) == WorldSet.singleton(
                VOCAB, f.apply_world(world)
            )

    def test_apply_world_set_vocabulary_check(self):
        F = NondetMorphism.of(Morphism.identity(VOCAB))
        with pytest.raises(VocabularyMismatchError):
            F.apply_world_set(WorldSet.total(Vocabulary.standard(2)))


class TestComposition:
    def test_fact_142_composition_commutes_with_extension(self):
        F = NondetMorphism([force_a1(True), force_a1(False)])
        G = NondetMorphism(
            [
                Morphism(VOCAB, VOCAB, {"A2": TRUE}),
                Morphism(VOCAB, VOCAB, {"A3": TRUE}),
            ]
        )
        composed = F.then(G)
        for world in all_worlds(VOCAB):
            stepwise = G.apply_world_set(F.apply_world(world))
            assert composed.apply_world(world) == stepwise

    def test_composition_component_count(self):
        F = NondetMorphism([force_a1(True), force_a1(False)])
        G = NondetMorphism([Morphism.identity(VOCAB)])
        assert len(F.then(G)) <= len(F) * len(G)

    def test_composition_with_empty_is_empty(self):
        F = NondetMorphism.of(Morphism.identity(VOCAB))
        E = NondetMorphism.empty(VOCAB)
        assert len(F.then(E)) == 0
        assert len(E.then(F)) == 0

    def test_composition_vocabulary_mismatch(self):
        F = NondetMorphism.of(Morphism.identity(VOCAB))
        G = NondetMorphism.of(Morphism.identity(Vocabulary.standard(2)))
        with pytest.raises(VocabularyMismatchError):
            F.then(G)


class TestIdentitySemantics:
    def test_equality_ignores_component_order(self):
        F1 = NondetMorphism([force_a1(True), force_a1(False)])
        F2 = NondetMorphism([force_a1(False), force_a1(True)])
        assert F1 == F2 and hash(F1) == hash(F2)

    def test_repr(self):
        assert "2 component(s)" in repr(
            NondetMorphism([force_a1(True), force_a1(False)])
        )
