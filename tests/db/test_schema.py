"""Tests for database schemata (repro.db.schema)."""

import pytest

from repro.db.schema import DbSchema
from repro.errors import SchemaError
from repro.logic.parser import parse_formula
from repro.logic.propositions import Vocabulary
from repro.logic.semantics import models_of_clauses


class TestConstruction:
    def test_of_with_count(self):
        schema = DbSchema.of(3)
        assert schema.vocabulary == Vocabulary.standard(3)
        assert schema.constraints == ()

    def test_of_with_names(self):
        schema = DbSchema.of(["P", "Q"])
        assert schema.vocabulary.names == ("P", "Q")

    def test_of_parses_string_constraints(self):
        schema = DbSchema.of(2, constraints=["A1 -> A2"])
        assert schema.constraints == (parse_formula("A1 -> A2"),)

    def test_of_accepts_formula_constraints(self):
        formula = parse_formula("A1 | A2")
        schema = DbSchema.of(2, constraints=[formula])
        assert schema.constraints == (formula,)

    def test_constraint_outside_vocabulary_rejected(self):
        with pytest.raises(SchemaError, match="unknown letters"):
            DbSchema.of(2, constraints=["A3"])


class TestLegality:
    def test_unconstrained_schema_all_legal(self):
        schema = DbSchema.of(3)
        assert len(schema.legal_worlds()) == 8

    def test_constraint_filters_worlds(self):
        schema = DbSchema.of(2, constraints=["A1 -> A2"])
        # Illegal world: A1 true, A2 false (= 0b01).
        assert not schema.is_legal(0b01)
        assert schema.is_legal(0b11)
        assert len(schema.legal_worlds()) == 3

    def test_legal_worlds_cached_and_consistent(self):
        schema = DbSchema.of(2, constraints=["A1"])
        assert schema.legal_worlds() is schema.legal_worlds()

    def test_unsatisfiable_constraints_leave_no_legal_world(self):
        schema = DbSchema.of(2, constraints=["A1", "~A1"])
        assert schema.legal_worlds() == frozenset()

    def test_constraint_clauses_match_legal_worlds(self):
        schema = DbSchema.of(3, constraints=["A1 -> A2", "A2 -> A3"])
        assert models_of_clauses(schema.constraint_clauses()) == schema.legal_worlds()


class TestIdentity:
    def test_equality(self):
        assert DbSchema.of(2, constraints=["A1"]) == DbSchema.of(2, constraints=["A1"])
        assert DbSchema.of(2) != DbSchema.of(2, constraints=["A1"])

    def test_hashable(self):
        assert {DbSchema.of(2): 1}[DbSchema.of(2)] == 1

    def test_repr_mentions_constraint_count(self):
        assert "2 constraint(s)" in repr(DbSchema.of(2, constraints=["A1", "A2"]))
