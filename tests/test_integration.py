"""Cross-module integration scenarios.

Each test exercises a realistic end-to-end flow spanning several
subsystems -- the kind of composition a downstream user would write --
and cross-checks representations against each other throughout.
"""

import random

from repro import (
    ClauseSet,
    DbSchema,
    IncompleteDatabase,
    RelationalDatabase,
    RelationalSchema,
    Vocabulary,
    WorldSet,
)
from repro.baselines import WilkinsDatabase
from repro.blu import ClausalImplementation, InstanceImplementation, canonical_emulation
from repro.hlu import insert, language, parse_update, where
from repro.relational import ANY, exists, var


class TestPaperWalkthrough:
    """The whole paper, front to back, as one executable narrative."""

    def test_sections_1_through_3(self):
        # §1: schema, worlds, Inset.
        from repro.db import inset

        vocab = Vocabulary.standard(5)
        assert len(inset(vocab, ["A1 | A2"])) == 3

        # §2: BLU at both levels, with the emulation.
        clausal = ClausalImplementation(vocab)
        instance = InstanceImplementation(vocab)
        emulation = canonical_emulation(clausal, instance)
        phi = ClauseSet.from_strs(
            vocab, ["~A1 | A3", "A1 | A4", "A4 | A5", "~A1 | ~A2 | ~A5"]
        )
        payload = ClauseSet.from_strs(vocab, ["A1 | A2"])
        from repro.hlu import HLU_INSERT

        assert emulation.check_term(
            HLU_INSERT.body, {"s0": phi, "s1": payload}
        )

        # §3: HLU through the session, textual surface, both backends.
        db = IncompleteDatabase.over(5)
        db.run(
            "(assert {~A1 | A3, A1 | A4, A4 | A5, ~A1 | ~A2 | ~A5})"
            "(where {A5} (insert {A1 | A2}))"
        )
        mirror = db.with_backend("instance")
        assert db.worlds() == mirror.worlds()
        assert db.is_certain("A5 -> (A1 | A2)")

    def test_section_5_relational_flow(self):
        schema = RelationalSchema.build(
            constants={
                "person": ["Jones", "Smith"],
                "dept": ["D1", "D2"],
                "telno": ["T1", "T2", "T3"],
            },
            relations={"R": [("N", "person"), ("D", "dept"), ("T", "telno")]},
        )
        db = RelationalDatabase(schema)
        db.tell(("R", "Jones", "D1", "T2"))
        db.where_update(
            pattern=("R", "Jones", var("y"), ANY),
            action=("R", "Jones", var("y"), exists(schema.algebra.named("telno"))),
        )
        # Grounded mirror and compact store agree fact by fact.
        compact = RelationalDatabase(schema, grounded=False)
        compact.tell(("R", "Jones", "D1", "T2"))
        compact.where_update(
            pattern=("R", "Jones", var("y"), ANY),
            action=("R", "Jones", var("y"), exists(schema.algebra.named("telno"))),
        )
        for t in ("T1", "T2", "T3"):
            assert db.certain("R", "Jones", "D1", t) == compact.certain(
                "R", "Jones", "D1", t
            )
        some = [("R", ("Jones", "D1", t)) for t in ("T1", "T2", "T3")]
        assert db.certain_disjunction(some) and compact.certain_disjunction(some)


class TestThreeWayAgreement:
    """Hegner's two backends and Wilkins' system (modulo its syntactic
    masking) on a random regression script."""

    def test_random_script_regression(self):
        rng = random.Random(2027)
        vocab = Vocabulary.standard(4)
        clausal = IncompleteDatabase.over(4, backend="clausal")
        instance = IncompleteDatabase.over(4, backend="instance")
        wilkins = WilkinsDatabase(vocab)

        from repro.logic.clauses import clause_to_formula
        from repro.workloads.generators import random_clause

        for _ in range(10):
            payload = clause_to_formula(vocab, random_clause(rng, 4, 2))
            clausal.insert(payload)
            instance.insert(payload)
            wilkins.insert(payload)
            assert clausal.worlds() == instance.worlds()
            # Width-2 random clauses are never tautologous, so syntactic
            # and semantic dependency coincide and Wilkins agrees too.
            base_bits = (1 << 4) - 1
            from repro.logic.semantics import models_of_clauses

            wilkins_worlds = frozenset(
                w & base_bits for w in models_of_clauses(wilkins.state)
            )
            assert wilkins_worlds == instance.worlds().worlds


class TestConstraintsAcrossLayers:
    def test_schema_constraints_with_surface_syntax(self):
        db = IncompleteDatabase(
            DbSchema.of(3, constraints=["A1 -> A2"]),
            enforce_constraints=True,
        )
        db.run("(insert {A1})")
        assert db.is_certain("A2")
        db.undo()
        assert not db.is_certain("A2")


class TestParsedVersusConstructedUpdates:
    def test_equivalence_on_random_states(self):
        rng = random.Random(11)
        pairs = [
            ("(insert {A1 | A2})", insert("A1 | A2")),
            (
                "(where {A3} (insert {A1}) (delete {A2}))",
                where("A3", insert("A1"), language.delete("A2")),
            ),
            ("(modify {A1} {A2})", language.modify("A1", "A2")),
        ]
        for text, built in pairs:
            for _ in range(5):
                worlds = frozenset(rng.sample(range(8), rng.randint(1, 6)))
                left = IncompleteDatabase(
                    DbSchema.of(3),
                    backend="instance",
                    initial=WorldSet(Vocabulary.standard(3), worlds),
                )
                right = IncompleteDatabase(
                    DbSchema.of(3),
                    backend="instance",
                    initial=WorldSet(Vocabulary.standard(3), worlds),
                )
                left.apply(parse_update(text))
                right.apply(built)
                assert left.worlds() == right.worlds(), text
