"""Tests for the exception hierarchy (repro.errors)."""


from repro import errors


class TestHierarchy:
    ALL_ERRORS = [
        errors.ParseError,
        errors.VocabularyError,
        errors.VocabularyMismatchError,
        errors.SortError,
        errors.ArityError,
        errors.SchemaError,
        errors.IllegalUpdateError,
        errors.InconsistentLiteralsError,
        errors.UnknownConstantError,
        errors.TypeAlgebraError,
        errors.MacroExpansionError,
        errors.EvaluationError,
    ]

    def test_everything_derives_from_repro_error(self):
        for error_type in self.ALL_ERRORS:
            assert issubclass(error_type, errors.ReproError), error_type

    def test_specialisation_edges(self):
        assert issubclass(errors.ArityError, errors.SortError)
        assert issubclass(errors.InconsistentLiteralsError, errors.IllegalUpdateError)
        assert issubclass(errors.UnknownConstantError, errors.SchemaError)
        assert issubclass(errors.TypeAlgebraError, errors.SchemaError)

    def test_all_exports_are_accurate(self):
        for name in errors.__all__:
            assert hasattr(errors, name), name

    def test_parse_error_carries_context(self):
        error = errors.ParseError("bad", text="A |", position=2)
        assert error.text == "A |"
        assert error.position == 2

    def test_single_except_clause_catches_library_failures(self):
        from repro.hlu.session import IncompleteDatabase
        from repro.logic.parser import parse_formula
        from repro.logic.propositions import Vocabulary

        failures = 0
        for action in (
            lambda: parse_formula("A &"),
            lambda: Vocabulary(["A", "A"]),
            lambda: IncompleteDatabase.over(2).assert_("A9"),
            lambda: IncompleteDatabase.over(2, backend="prolog"),
        ):
            try:
                action()
            except errors.ReproError:
                failures += 1
        assert failures == 4
