"""Tests for the interactive HLU shell (repro.cli)."""

import pytest

from repro.cli import Shell, main
from repro.obs import core as obs_core


@pytest.fixture()
def shell():
    return Shell(5)


@pytest.fixture()
def traced_shell():
    """A shell with instrumentation on; flag and state restored afterwards."""
    obs_core.reset()
    shell = Shell(5)
    shell.execute(":trace on")
    yield shell
    obs_core.disable()
    obs_core.reset()


class TestUpdates:
    def test_apply_program(self, shell):
        assert shell.execute("(insert {A1 | A2})") == "ok"
        assert shell.execute("? A1 | A2") == "certain"

    def test_script_of_programs_on_one_line(self, shell):
        shell.execute("(assert {A1}) (insert {~A1})")
        assert shell.execute("? ~A1") == "certain"

    def test_inconsistency_reported(self, shell):
        shell.execute("(assert {A1})")
        out = shell.execute("(assert {~A1})")
        assert "inconsistent" in out

    def test_blank_and_comment_lines_ignored(self, shell):
        assert shell.execute("") == ""
        assert shell.execute("   ; a comment") == ""


class TestQueries:
    def test_certain_and_possible(self, shell):
        shell.execute("(assert {A1 | A2})")
        assert shell.execute("? A1") == "not certain"
        assert shell.execute("?? A1") == "possible"
        assert shell.execute("?? ~A1 & ~A2") == "impossible"

    def test_query_parse_error_is_friendly(self, shell):
        assert shell.execute("? A1 &").startswith("error:")

    def test_unknown_letter_is_friendly(self, shell):
        assert shell.execute("? A9").startswith("error:")


class TestCommands:
    def test_state(self, shell):
        shell.execute("(assert {A1})")
        assert "A1" in shell.execute(":state")

    def test_worlds_and_literals(self, shell):
        shell.execute("(assert {A1, ~A2})")
        worlds = shell.execute(":worlds 2")
        assert "A1" in worlds
        literals = shell.execute(":literals")
        assert "A1" in literals and "~A2" in literals

    def test_history(self, shell):
        assert shell.execute(":history") == "(no updates yet)"
        shell.execute("(insert {A1})")
        assert "(insert" in shell.execute(":history")

    def test_backend_switch_preserves_semantics(self, shell):
        shell.execute("(insert {A1 | A2})")
        assert shell.execute(":backend") == "clausal"
        assert shell.execute(":backend instance") == "switched to instance"
        assert shell.execute("? A1 | A2") == "certain"

    def test_reset(self, shell):
        shell.execute("(assert {A1})")
        shell.execute(":reset")
        assert shell.execute("? A1") == "not certain"

    def test_help_and_quit(self, shell):
        assert ":state" in shell.execute(":help")
        shell.execute(":quit")
        assert shell.done

    def test_unknown_command(self, shell):
        assert shell.execute(":frobnicate").startswith("error:")

    def test_unknown_command_suggests_nearest(self, shell):
        out = shell.execute(":stat")
        assert out.startswith("error:")
        assert "did you mean :stats?" in out
        assert "did you mean :trace?" in shell.execute(":tracer")

    def test_unrecognised_input(self, shell):
        assert shell.execute("hello").startswith("error:")


class TestObservabilityCommands:
    def test_trace_on_off(self, traced_shell):
        assert obs_core.is_enabled()
        assert traced_shell.execute(":trace off") == "tracing off"
        assert not obs_core.is_enabled()

    def test_trace_show_has_span_tree(self, traced_shell):
        traced_shell.execute("(insert {A1 | A2})")
        tree = traced_shell.execute(":trace show")
        assert "hlu.apply" in tree
        assert "blu.c.mask" in tree

    def test_trace_clear(self, traced_shell):
        traced_shell.execute("(insert {A1})")
        assert traced_shell.execute(":trace clear") == "trace cleared"
        assert traced_shell.execute(":trace show") == "(no spans recorded)"

    def test_trace_bad_mode(self, traced_shell):
        assert traced_shell.execute(":trace sideways").startswith("error:")

    def test_stats_counts_kernel_work(self, traced_shell):
        traced_shell.execute("(insert {A1 | A2})")
        stats = traced_shell.execute(":stats")
        assert "hlu.updates" in stats
        assert "blu.c.mask.calls" in stats

    def test_stats_reset_zeroes_deltas(self, traced_shell):
        traced_shell.execute("(insert {A1})")
        assert traced_shell.execute(":stats reset") == "counters reset"
        assert traced_shell.execute(":stats") == (
            "(no counter activity since the last reset)"
        )
        traced_shell.execute("? A1")
        assert "hlu.queries" in traced_shell.execute(":stats")

    def test_stats_hints_when_tracing_off(self, shell):
        out = shell.execute(":stats")
        assert "try :trace on" in out

    def test_help_mentions_stats_and_trace(self, shell):
        help_text = shell.execute(":help")
        assert ":stats" in help_text
        assert ":trace" in help_text


class TestProfileCommand:
    def test_profile_shows_hotspot_table(self, traced_shell):
        traced_shell.execute("(insert {A1 | A2})")
        out = traced_shell.execute(":profile")
        assert "trace hotspots" in out
        assert "self ms" in out
        assert "hlu.apply" in out

    def test_profile_row_limit(self, traced_shell):
        traced_shell.execute("(insert {A1 | A2})")
        out = traced_shell.execute(":profile 1")
        assert "cooler name(s) not shown" in out
        # header + claim + observed + column line + rule + one data row
        assert len(out.splitlines()) == 6

    def test_profile_bad_limit_is_friendly(self, traced_shell):
        out = traced_shell.execute(":profile lots")
        assert out.startswith("error:")

    def test_profile_hints_when_tracing_off(self, shell):
        assert "try :trace on" in shell.execute(":profile")

    def test_profile_with_no_spans_yet(self, traced_shell):
        assert traced_shell.execute(":profile") == "(no spans recorded)"

    def test_profile_suggested_for_typo(self, shell):
        assert "did you mean :profile?" in shell.execute(":profil")

    def test_help_mentions_profile(self, shell):
        assert ":profile" in shell.execute(":help")


class TestTraceReportMain:
    def make_trace(self, tmp_path, name="trace.jsonl"):
        from repro.obs.core import Span
        from repro.obs.export import export_jsonl

        kernel = Span("logic.kernel", {"clauses_in": 4}, start=0.1, elapsed=0.8)
        root = Span("blu.op", {}, start=0.0, elapsed=1.0, children=[kernel])
        path = tmp_path / name
        path.write_text(export_jsonl([root]))
        return path

    def test_prints_hotspot_table(self, tmp_path, capsys):
        path = self.make_trace(tmp_path)
        assert main(["trace-report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "trace hotspots" in out
        assert "logic.kernel" in out

    def test_writes_flamegraph_exports(self, tmp_path, capsys):
        import json

        path = self.make_trace(tmp_path)
        folded = tmp_path / "out.folded"
        speedscope = tmp_path / "out.speedscope.json"
        code = main(
            [
                "trace-report",
                str(path),
                "--folded",
                str(folded),
                "--speedscope",
                str(speedscope),
            ]
        )
        assert code == 0
        assert "blu.op;logic.kernel 800000" in folded.read_text()
        document = json.loads(speedscope.read_text())
        assert document["profiles"][0]["type"] == "evented"
        out = capsys.readouterr().out
        assert "folded stacks written" in out
        assert "speedscope profile written" in out

    def test_missing_file_exits_2(self, tmp_path, capsys):
        path = tmp_path / "nope.jsonl"
        assert main(["trace-report", str(path)]) == 2
        err = capsys.readouterr().err
        assert err.startswith(f"error: {path}:")
        assert len(err.strip().splitlines()) == 1

    def test_schema_drift_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type": "mystery"}\n')
        assert main(["trace-report", str(bad)]) == 2
        assert "unknown record type" in capsys.readouterr().err

    def test_no_validate_skips_schema_check(self, tmp_path, capsys):
        # A legacy histogram record (no buckets) fails validation but
        # the span analysis does not need it.
        path = self.make_trace(tmp_path)
        legacy = '{"type": "histogram", "name": "h", "count": 1, "total": 2.0, "min": 2.0, "max": 2.0}\n'
        path.write_text(path.read_text() + legacy)
        assert main(["trace-report", str(path)]) == 2
        capsys.readouterr()
        assert main(["trace-report", str(path), "--no-validate"]) == 0

    def test_limit_flag(self, tmp_path, capsys):
        path = self.make_trace(tmp_path)
        assert main(["trace-report", str(path), "--limit", "1"]) == 0
        assert "1 cooler name(s) not shown" in capsys.readouterr().out


class TestMain:
    def test_script_mode(self, tmp_path, capsys):
        script = tmp_path / "session.hlu"
        script.write_text(
            "(assert {A1 | A2})\n"
            "? A1 | A2\n"
            ":literals\n"
        )
        code = main(["--letters", "3", "--script", str(script)])
        captured = capsys.readouterr()
        assert code == 0
        assert "certain" in captured.out

    def test_named_letters(self, tmp_path, capsys):
        script = tmp_path / "s.hlu"
        script.write_text("(insert {Rain})\n? Rain\n")
        code = main(["--letters", "Rain,Wet", "--script", str(script)])
        assert code == 0
        assert "certain" in capsys.readouterr().out


class TestPersistenceCommands:
    def test_save_and_load_round_trip(self, shell, tmp_path):
        shell.execute("(assert {A1 | A2}) (insert {A3})")
        path = tmp_path / "session.txt"
        assert shell.execute(f":save {path}") == f"saved to {path}"
        shell.execute(":reset")
        assert shell.execute("? A3") == "not certain"
        out = shell.execute(f":load {path}")
        assert "2 update(s)" in out
        assert shell.execute("? A3") == "certain"
        assert shell.execute("? A1 | A2") == "certain"

    def test_save_without_path(self, shell):
        assert shell.execute(":save").startswith("error:")

    def test_load_without_path(self, shell):
        assert shell.execute(":load").startswith("error:")

    def test_canonical_command(self, shell):
        shell.execute("(assert {~A1 | A2 | A3, ~A1 | A2 | ~A3})")
        assert shell.execute(":canonical") == "{~A1 | A2}"


class TestStatsAll:
    def test_stats_all_shows_absolute_totals(self, traced_shell):
        traced_shell.execute("(insert {A1})")
        traced_shell.execute(":stats reset")
        totals = traced_shell.execute(":stats all")
        # Absolute totals survive a :stats reset (which only moves the
        # delta baseline).
        assert "hlu.updates" in totals
        assert "absolute" in totals

    def test_stats_all_hints_when_tracing_off(self, shell):
        assert "try :trace on" in shell.execute(":stats all")

    def test_stats_bad_argument(self, shell):
        out = shell.execute(":stats sideways")
        assert out.startswith("error:")
        assert "all" in out


class TestBenchCommand:
    def make_bench_file(self, directory, name="BENCH_20260805_120000.json"):
        from repro.bench.harness import Report, Timing
        from repro.obs import metrics

        report = Report(
            ident="E6", title="example 3.15", claim="c", columns=("k",)
        )
        report.holds = True
        report.counters = {"blu.c.mask.calls": 4}
        record = metrics.record_from_reports(
            [(report, Timing([0.01]))], git_sha="cafef00d"
        )
        return metrics.write_run_record(record, directory / name)

    def test_bench_last_summarises_latest_record(
        self, shell, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        self.make_bench_file(tmp_path, "BENCH_20260101_000000.json")
        latest = self.make_bench_file(tmp_path)
        out = shell.execute(":bench last")
        assert "E6" in out
        assert latest.name in out

    def test_bench_last_without_records_is_friendly(
        self, shell, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        out = shell.execute(":bench last")
        assert "no BENCH_" in out
        assert "run_experiments.py" in out

    def test_bench_explicit_file(self, shell, tmp_path):
        path = self.make_bench_file(tmp_path)
        out = shell.execute(f":bench {path}")
        assert "E6" in out

    def test_bench_bad_file_is_error_not_crash(self, shell, tmp_path):
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text("{broken")
        out = shell.execute(f":bench {bad}")
        assert out.startswith("error:")

    def test_help_mentions_bench(self, shell):
        assert ":bench last" in shell.execute(":help")


class TestWatchCommand:
    @pytest.fixture(autouse=True)
    def clean_runtime(self):
        from repro.obs import runtime

        runtime.disable()
        runtime.reset()
        yield
        runtime.disable()
        runtime.reset()

    def test_watch_auto_enables_telemetry(self, shell):
        from repro.obs import runtime

        assert not runtime.is_enabled()
        out = shell.execute(":watch")
        assert runtime.is_enabled()
        assert "now recording" in out

    def test_watch_shows_per_op_table_after_updates(self, shell):
        shell.execute(":watch")  # enables telemetry
        shell.execute("(insert {A1 | A2})")
        shell.execute("? A1")
        out = shell.execute(":watch")
        assert "hlu.update" in out
        assert "hlu.query" in out
        assert "ops/s" in out and "p50" in out and "p99" in out

    def test_watch_bad_interval_is_friendly(self, shell):
        assert shell.execute(":watch nope").startswith("error:")
        assert shell.execute(":watch -1").startswith("error:")
        assert shell.execute(":watch 0").startswith("error:")

    def test_watch_with_interval_but_no_tty_renders_once(self, shell):
        shell.execute(":watch")
        shell.execute("(insert {A1})")
        out = shell.execute(":watch 0.5")  # stdout is not a tty under pytest
        assert "hlu.update" in out
        assert "\x1b[" not in out

    def test_watch_suggested_for_typo(self, shell):
        assert "did you mean :watch?" in shell.execute(":watc")

    def test_help_mentions_watch(self, shell):
        assert ":watch" in shell.execute(":help")


class TestTelemetryMain:
    def _write_feed(self, path):
        from repro.obs import runtime

        registry = runtime.MetricsRegistry(clock=lambda: 1.0)
        registry.count("cache.hits", 3)
        registry.count("cache.misses", 1)
        registry.record_op("hlu.update", 0.002)
        writer = runtime.TelemetryWriter(str(path), source=registry, worker="E6")
        writer.write_snapshot(now=2.0)
        writer.close()

    def test_summarises_feed(self, tmp_path, capsys):
        feed = tmp_path / "telemetry.jsonl"
        self._write_feed(feed)
        assert main(["telemetry", str(feed)]) == 0
        out = capsys.readouterr().out
        assert "feed schema 1" in out
        assert "workers: E6" in out
        assert "hlu.update" in out
        assert "cache hit rate: 75%" in out

    def test_prometheus_rendering(self, tmp_path, capsys):
        feed = tmp_path / "telemetry.jsonl"
        self._write_feed(feed)
        assert main(["telemetry", str(feed), "--prometheus"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_cache_hits_total counter" in out
        assert "repro_cache_hits_total 3" in out
        assert "# TYPE repro_hlu_update_seconds summary" in out

    def test_missing_file_exits_2(self, tmp_path, capsys):
        path = tmp_path / "absent.jsonl"
        assert main(["telemetry", str(path)]) == 2
        err = capsys.readouterr().err
        assert err.startswith(f"error: {path}:")
        assert len(err.strip().splitlines()) == 1

    _DRIFTED_META = (
        '{"type": "meta", "schema": 42, "window_seconds": 10.0, '
        '"slots": 5, "worker": null}\n'
    )

    def test_schema_drift_exits_2(self, tmp_path, capsys):
        feed = tmp_path / "bad.jsonl"
        feed.write_text(self._DRIFTED_META)
        assert main(["telemetry", str(feed)]) == 2
        assert "unsupported feed schema" in capsys.readouterr().err

    def test_no_validate_skips_schema_check(self, tmp_path, capsys):
        feed = tmp_path / "old.jsonl"
        feed.write_text(self._DRIFTED_META)
        assert main(["telemetry", str(feed), "--no-validate"]) == 0
        assert "no snapshots" in capsys.readouterr().out

    def test_empty_feed_reports_no_snapshots(self, tmp_path, capsys):
        feed = tmp_path / "empty.jsonl"
        from repro.obs import runtime

        writer = runtime.TelemetryWriter(str(feed), worker="E6")
        writer.close()
        assert main(["telemetry", str(feed)]) == 0
        assert "no snapshots" in capsys.readouterr().out


@pytest.fixture()
def audited_shell():
    """A shell with the audit trail cleaned up afterwards."""
    from repro.hlu import audit

    audit.disable()
    yield Shell(5)
    audit.disable()


class TestWhyCommand:
    def test_why_certain_formula_renders_verified_proof(self, shell):
        shell.execute("(assert {A1 | A2, ~A2 | A1})")
        out = shell.execute(":why A1")
        assert "why A1 is certain" in out
        assert "assumption" in out
        assert "independently verified" in out

    def test_why_not_certain(self, shell):
        shell.execute("(assert {A1 | A2})")
        out = shell.execute(":why A1")
        assert out.startswith("not certain")

    def test_why_without_args_explains_inconsistency(self, shell):
        shell.execute("(assert {A1})")
        shell.execute("(assert {~A1})")
        out = shell.execute(":why")
        assert "why the state is inconsistent" in out
        assert "resolve" in out
        assert "independently verified" in out

    def test_why_on_consistent_state(self, shell):
        assert "state is consistent" in shell.execute(":why")

    def test_why_tautology(self, shell):
        assert "tautology" in shell.execute(":why A1 | ~A1")

    def test_why_conjunction_proves_each_clause(self, shell):
        shell.execute("(assert {A1, A2})")
        out = shell.execute(":why A1 & A2")
        assert out.count("independently verified") == 2

    def test_why_leaves_provenance_disabled(self, shell):
        from repro.obs import provenance

        shell.execute("(assert {A1})")
        shell.execute(":why A1")
        assert not provenance.is_enabled()


class TestAuditShellCommand:
    def test_on_record_show_replay_off(self, audited_shell):
        sh = audited_shell
        assert "audit on" in sh.execute(":audit on")
        sh.execute("(insert {A1 | A2})")
        sh.execute("? A1 | A2")
        listing = sh.execute(":audit")
        assert "session" in listing
        assert "apply" in listing and "query_certain" in listing
        assert "replay: " in sh.execute(":audit replay")
        assert "audit off" == sh.execute(":audit off")

    def test_show_respects_limit(self, audited_shell):
        sh = audited_shell
        sh.execute(":audit on")
        for _ in range(3):
            sh.execute("(insert {A1})")
        assert len(sh.execute(":audit 2").splitlines()) == 2

    def test_save_writes_replayable_file(self, audited_shell, tmp_path):
        sh = audited_shell
        sh.execute(":audit on")
        sh.execute("(insert {A1})")
        path = tmp_path / "audit_repl.jsonl"
        assert "saved" in sh.execute(f":audit save {path}")
        assert main(["audit", str(path), "--replay"]) == 0

    def test_audit_on_file_streams(self, audited_shell, tmp_path):
        sh = audited_shell
        path = tmp_path / "audit_stream.jsonl"
        sh.execute(f":audit on {path}")
        sh.execute("(insert {A1})")
        assert "streaming to a file" in sh.execute(":audit")
        sh.execute(":audit off")
        assert main(["audit", str(path), "--replay"]) == 0

    def test_off_when_already_off(self, audited_shell):
        assert "already off" in audited_shell.execute(":audit off")

    def test_unknown_subcommand(self, audited_shell):
        assert "error" in audited_shell.execute(":audit sideways")


def _saved_session(tmp_path, *programs):
    shell = Shell(5)
    for program in programs:
        shell.execute(program)
    path = tmp_path / "session.txt"
    shell.execute(f":save {path}")
    return str(path)


class TestExplainMain:
    def test_certain_prints_verified_refutation(self, tmp_path, capsys):
        session = _saved_session(tmp_path, "(assert {A1 | A2, ~A2 | A1})")
        assert main(["explain", session, "--certain", "A1"]) == 0
        out = capsys.readouterr().out
        assert "why A1 is certain" in out
        assert "independently verified" in out

    def test_not_certain_exits_1(self, tmp_path, capsys):
        session = _saved_session(tmp_path, "(assert {A1 | A2})")
        assert main(["explain", session, "--certain", "A1"]) == 1
        assert "not certain" in capsys.readouterr().out

    def test_clause_in_closure(self, tmp_path, capsys):
        session = _saved_session(tmp_path, "(assert {A1 | A2, ~A1 | A3})")
        assert main(["explain", session, "--clause", "A2 | A3"]) == 0
        assert "in the closure" in capsys.readouterr().out

    def test_clause_not_derivable_exits_1(self, tmp_path, capsys):
        session = _saved_session(tmp_path, "(assert {A1 | A2})")
        assert main(["explain", session, "--clause", "A3"]) == 1
        assert "not in the resolution closure" in capsys.readouterr().out

    def test_default_explains_inconsistency(self, tmp_path, capsys):
        session = _saved_session(tmp_path, "(assert {A1})", "(assert {~A1})")
        assert main(["explain", session]) == 0
        assert "why the state is inconsistent" in capsys.readouterr().out

    def test_consistent_state_exits_1(self, tmp_path, capsys):
        session = _saved_session(tmp_path, "(assert {A1})")
        assert main(["explain", session]) == 1
        assert "state is consistent" in capsys.readouterr().out

    def test_json_output_round_trips(self, tmp_path, capsys):
        import json as json_mod

        from repro.obs import provenance

        session = _saved_session(tmp_path, "(assert {A1})", "(assert {~A1})")
        assert main(["explain", session, "--json"]) == 0
        document = json_mod.loads(capsys.readouterr().out)
        steps = provenance.derivation_from_json(document)
        assert provenance.verify_derivation(steps, target=frozenset()) == []

    def test_missing_session_exits_2(self, tmp_path, capsys):
        path = tmp_path / "absent.txt"
        assert main(["explain", str(path)]) == 2
        err = capsys.readouterr().err
        assert err.startswith(f"error: {path}:")
        assert len(err.strip().splitlines()) == 1

    def test_budget_overflow_exits_2(self, tmp_path, capsys):
        import itertools

        clauses = ", ".join(
            "(" + " | ".join(
                f"{'~' if s else ''}A{i + 1}" for i, s in enumerate(signs)
            ) + ")"
            for signs in itertools.product([0, 1], repeat=4)
        )
        session = _saved_session(tmp_path, f"(assert {{{clauses}}})")
        assert main(
            ["explain", session, "--max-clauses", "5"]
        ) == 2
        assert "--max-clauses" in capsys.readouterr().err


class TestAuditMain:
    def _trail(self, tmp_path, tamper=None):
        from repro.hlu import audit

        audit.disable()
        trail = audit.enable()
        shell = Shell(5)  # created while enabled: auto-registers
        shell.execute("(insert {A1 | A2})")
        shell.execute("? A1 | A2")
        audit.disable()
        if tamper is not None:
            tamper(trail.records)
        path = tmp_path / "audit_main.jsonl"
        trail.save(path)
        return str(path)

    def test_summarises_and_replays(self, tmp_path, capsys):
        path = self._trail(tmp_path)
        assert main(["audit", path, "--replay", "--limit", "5"]) == 0
        out = capsys.readouterr().out
        assert "1 session(s), 2 op(s)" in out
        assert "audit replay" in out and "ok" in out

    def test_schema_drift_exits_2(self, tmp_path, capsys):
        def drift(records):
            records[0]["schema"] = 99

        path = self._trail(tmp_path, tamper=drift)
        assert main(["audit", path]) == 2
        assert "schema" in capsys.readouterr().err

    def test_structural_problem_exits_2(self, tmp_path, capsys):
        def gap(records):
            records[-1]["seq"] = 7

        path = self._trail(tmp_path, tamper=gap)
        assert main(["audit", path]) == 2
        assert "seq" in capsys.readouterr().err

    def test_failed_replay_exits_2(self, tmp_path, capsys):
        def forge(records):
            for record in records:
                if record.get("post") is not None:
                    record["post"]["digest"] = "00" * 8

        path = self._trail(tmp_path, tamper=forge)
        assert main(["audit", path, "--replay"]) == 2
        assert "mismatch" in capsys.readouterr().out

    def test_missing_file_exits_2(self, tmp_path, capsys):
        path = tmp_path / "absent.jsonl"
        assert main(["audit", str(path)]) == 2
        err = capsys.readouterr().err
        assert err.startswith(f"error: {path}:")
        assert len(err.strip().splitlines()) == 1


class TestIncrementalDiffMain:
    def test_small_run_agrees(self, capsys):
        assert main(
            ["incremental-diff", "--sequences", "6", "--steps", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "0 mismatch(es)" in out
        assert "agrees with scratch" in out

    def test_budget_sequences_exercised(self, capsys):
        # Every sequence runs under a tight budget; parity must hold
        # through overflow and recovery.
        assert main(
            [
                "incremental-diff",
                "--sequences",
                "5",
                "--steps",
                "6",
                "--budget-every",
                "1",
            ]
        ) == 0
        assert "0 mismatch(es)" in capsys.readouterr().out

    def test_bad_arguments_rejected(self):
        import pytest as _pytest

        with _pytest.raises(SystemExit):
            main(["incremental-diff", "--sequences", "0"])

    def test_leaves_global_switches_untouched(self, capsys):
        from repro.cache import core as cache_mod
        from repro.logic import incremental

        cache_mod.disable_cache()
        incremental.disable_incremental()
        assert main(["incremental-diff", "--sequences", "3"]) == 0
        assert not cache_mod.cache_enabled()
        assert not incremental.incremental_enabled()


class TestInputErrorPaths:
    """Every file-reading subcommand: one `error: <path>: ...` line, exit 2.

    Pinned for both a missing path and a non-UTF-8 (binary) file -- the
    latter used to escape as a raw UnicodeDecodeError traceback.
    """

    SUBCOMMANDS = (
        lambda p: ["bench-diff", p],
        lambda p: ["trace-report", p],
        lambda p: ["telemetry", p],
        lambda p: ["explain", p, "--certain", "A1"],
        lambda p: ["audit", p],
        lambda p: ["perf-history", "record", p],
    )

    @pytest.mark.parametrize("argv_for", SUBCOMMANDS)
    def test_missing_file_is_one_error_line_exit_2(
        self, argv_for, tmp_path, capsys
    ):
        path = str(tmp_path / "missing.input")
        assert main(argv_for(path)) == 2
        err = capsys.readouterr().err
        assert err.startswith(f"error: {path}:")
        assert len(err.strip().splitlines()) == 1

    @pytest.mark.parametrize("argv_for", SUBCOMMANDS)
    def test_binary_file_is_one_error_line_exit_2(
        self, argv_for, tmp_path, capsys
    ):
        target = tmp_path / "binary.input"
        target.write_bytes(b"\xff\xfe\x00BENCH\x9d\x80")
        assert main(argv_for(str(target))) == 2
        err = capsys.readouterr().err
        assert err.startswith(f"error: {target}:")
        assert len(err.strip().splitlines()) == 1


class TestPerfHistoryMain:
    def make_record_file(self, tmp_path, name, seconds=0.02, counter=100,
                         git_sha="a" * 40):
        from repro.bench.harness import Report, Timing
        from repro.obs import metrics

        report = Report(ident="E6", title="t", claim="c", columns=("k", "v"))
        report.holds = True
        report.counters = {"resolution.steps": counter}
        record = metrics.record_from_reports(
            [(report, Timing([seconds] * 3))], git_sha=git_sha
        )
        return str(metrics.write_run_record(record, tmp_path / name))

    def seed_store(self, tmp_path, specs):
        store = tmp_path / "hist"
        for sha, seconds, counter in specs:
            path = self.make_record_file(
                tmp_path, f"BENCH_{sha[:4]}.json", seconds, counter, sha
            )
            assert main(
                ["perf-history", "record", path, "--dir", str(store)]
            ) == 0
        return str(store)

    def test_record_appends_and_reports_target(self, tmp_path, capsys):
        store = self.seed_store(tmp_path, [("a" * 40, 0.02, 100)])
        out = capsys.readouterr().out
        assert "recorded aaaaaaa" in out
        assert "history.jsonl" in out
        from repro.obs import history as history_mod

        assert len(history_mod.read_history(store)) == 1

    def test_trend_renders_sparkline_table(self, tmp_path, capsys):
        store = self.seed_store(
            tmp_path, [("a" * 40, 0.02, 100), ("b" * 40, 0.021, 100)]
        )
        capsys.readouterr()
        assert main(["perf-history", "trend", "--dir", store]) == 0
        out = capsys.readouterr().out
        assert "== TREND:" in out
        assert "E6" in out

    def test_trend_exits_1_on_drift(self, tmp_path, capsys):
        store = self.seed_store(
            tmp_path,
            [
                ("a" * 40, 0.02, 100),
                ("b" * 40, 0.02, 100),
                ("c" * 40, 0.06, 100),
                ("d" * 40, 0.06, 100),
            ],
        )
        capsys.readouterr()
        assert main(["perf-history", "trend", "--dir", store]) == 1
        assert "regressed at ccccccc" in capsys.readouterr().out

    def test_bisect_names_the_first_drifting_commit(self, tmp_path, capsys):
        store = self.seed_store(
            tmp_path,
            [
                ("a" * 40, 0.02, 100),
                ("b" * 40, 0.02, 100),
                ("c" * 40, 0.02, 140),
            ],
        )
        capsys.readouterr()
        assert main(["perf-history", "bisect", "--dir", store]) == 0
        out = capsys.readouterr().out
        assert "E6 counter:resolution.steps: regressed at ccccccc" in out

    def test_bisect_on_stable_history_exits_1(self, tmp_path, capsys):
        store = self.seed_store(
            tmp_path, [("a" * 40, 0.02, 100), ("b" * 40, 0.02, 100)]
        )
        capsys.readouterr()
        assert main(["perf-history", "bisect", "--dir", store]) == 1
        assert "no changepoint" in capsys.readouterr().out

    def test_machine_filter_current_matches_recorded_entries(
        self, tmp_path, capsys
    ):
        store = self.seed_store(
            tmp_path, [("a" * 40, 0.02, 100), ("b" * 40, 0.02, 100)]
        )
        capsys.readouterr()
        assert main(
            ["perf-history", "trend", "--dir", store, "--machine", "current"]
        ) == 0
        assert "E6" in capsys.readouterr().out

    def test_schema_drift_exits_2(self, tmp_path, capsys):
        import json as json_mod

        store = tmp_path / "hist"
        path = self.make_record_file(tmp_path, "BENCH_a.json")
        assert main(["perf-history", "record", path, "--dir", str(store)]) == 0
        store_file = store / "history.jsonl"
        line = json_mod.loads(store_file.read_text().splitlines()[0])
        line["schema_version"] = 99
        store_file.write_text(json_mod.dumps(line) + "\n")
        capsys.readouterr()
        assert main(["perf-history", "trend", "--dir", str(store)]) == 2
        assert "newer" in capsys.readouterr().err

    def test_missing_store_exits_2_with_seeding_hint(self, tmp_path, capsys):
        assert main(
            ["perf-history", "trend", "--dir", str(tmp_path / "none")]
        ) == 2
        assert "perf-history record" in capsys.readouterr().err


class TestTrendCommand:
    def test_trend_renders_history_from_cwd(self, shell, tmp_path, monkeypatch):
        from repro.bench.harness import Report, Timing
        from repro.obs import history as history_mod
        from repro.obs import metrics

        monkeypatch.chdir(tmp_path)
        for day, sha in enumerate(("a" * 40, "b" * 40), 1):
            report = Report(ident="E6", title="t", claim="c", columns=("k",))
            report.holds = True
            report.counters = {"c": 1}
            record = metrics.record_from_reports(
                [(report, Timing([0.02] * 3))], git_sha=sha
            )
            history_mod.append_history(
                record,
                directory=tmp_path / history_mod.DEFAULT_HISTORY_RELPATH,
                recorded=f"2026-08-{day:02d}T00:00:00Z",
            )
        output = shell.execute(":trend")
        assert "== TREND:" in output
        assert "E6" in output
        filtered = shell.execute(":trend E6")
        assert "E6" in filtered
        missing = shell.execute(":trend E99")
        assert "no history" in missing

    def test_trend_without_history_is_friendly(self, shell, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        output = shell.execute(":trend")
        assert output.startswith("error:")
        assert "perf-history record" in output

    def test_trend_suggested_for_typo(self, shell):
        assert "did you mean :trend" in shell.execute(":trned")

    def test_help_mentions_trend_and_perf_history(self, shell):
        text = shell.execute(":help")
        assert ":trend" in text
        assert "perf-history" in text
