"""Tests for resolution machinery (repro.logic.resolution)."""

import pytest

from repro.logic.clauses import ClauseSet, clause_of, make_literal
from repro.logic.propositions import Vocabulary
from repro.logic.resolution import (
    drop,
    eliminate_letter,
    rclosure,
    resolution_closure,
    resolvent,
    unit_resolve,
)
from repro.logic.semantics import models_of_clauses
from repro.logic.structures import saturate_on

VOCAB = Vocabulary.standard(5)


class TestResolvent:
    def test_basic_resolvent(self):
        pos = clause_of([make_literal(0), make_literal(2)])          # A1 | A3
        neg = clause_of([make_literal(0, False), make_literal(3)])   # ~A1 | A4
        assert resolvent(pos, neg, 0) == clause_of([make_literal(2), make_literal(3)])

    def test_unit_clauses_give_empty_clause(self):
        assert resolvent(clause_of([1]), clause_of([-1]), 0) == frozenset()

    def test_missing_literal_returns_none(self):
        assert resolvent(clause_of([2]), clause_of([-1]), 0) is None

    def test_tautologous_resolvent_suppressed(self):
        pos = clause_of([make_literal(0), make_literal(1)])           # A1 | A2
        neg = clause_of([make_literal(0, False), make_literal(1, False)])  # ~A1 | ~A2
        assert resolvent(pos, neg, 0) is None

    def test_duplicate_literals_merge(self):
        pos = clause_of([make_literal(0), make_literal(2)])
        neg = clause_of([make_literal(0, False), make_literal(2)])
        assert resolvent(pos, neg, 0) == clause_of([make_literal(2)])


class TestRclosure:
    def test_adds_resolvents_on_listed_letters_only(self):
        cs = ClauseSet.from_strs(VOCAB, ["A1 | A2", "~A1 | A3", "A2 | A4", "~A2 | A5"])
        closed = rclosure(cs, [0])
        assert clause_of([make_literal(1), make_literal(2)]) in closed  # A2 | A3
        # No resolution on A2 was requested.
        assert clause_of([make_literal(3), make_literal(4)]) not in closed

    def test_reaches_fixpoint_across_letters(self):
        # Chain: A1|A2, ~A2|A3, ~A3|A4; closing on {A2, A3} must derive A1|A4.
        cs = ClauseSet.from_strs(VOCAB, ["A1 | A2", "~A2 | A3", "~A3 | A4"])
        closed = rclosure(cs, [1, 2])
        assert clause_of([make_literal(0), make_literal(3)]) in closed

    def test_original_clauses_retained(self):
        cs = ClauseSet.from_strs(VOCAB, ["A1 | A2", "~A1 | A3"])
        closed = rclosure(cs, [0])
        assert cs.clauses <= closed.clauses

    def test_closure_preserves_models(self):
        cs = ClauseSet.from_strs(VOCAB, ["A1 | A2", "~A1 | A3", "~A2 | A3"])
        assert models_of_clauses(rclosure(cs, [0, 1])) == models_of_clauses(cs)


class TestDrop:
    def test_drop_removes_mentioning_clauses(self):
        cs = ClauseSet.from_strs(VOCAB, ["A1 | A2", "A3", "~A1"])
        assert drop(cs, [0]) == ClauseSet.from_strs(VOCAB, ["A3"])


class TestEliminateLetter:
    """eliminate_letter computes exists-A projection -- the mask kernel."""

    def test_paper_example_masking(self):
        # Example 3.1.5: mask Phi on {A1, A2} -> {A4 | A5, A3 | A4}.
        phi = ClauseSet.from_strs(
            VOCAB, ["~A1 | A3", "A1 | A4", "A4 | A5", "~A1 | ~A2 | ~A5"]
        )
        masked = eliminate_letter(eliminate_letter(phi, 0), 1)
        assert masked == ClauseSet.from_strs(VOCAB, ["A4 | A5", "A3 | A4"])

    def test_projection_matches_world_saturation(self):
        # Mod[eliminate A] must equal the A-saturation of Mod (Thm 2.3.6 core).
        samples = [
            ["A1 | A2", "~A1 | A3"],
            ["A1", "~A1 | A2", "A3 | ~A2"],
            ["A1 | A2 | A3", "~A1 | ~A2", "~A3 | A4"],
        ]
        for strs in samples:
            cs = ClauseSet.from_strs(VOCAB, strs)
            for index in range(3):
                projected = eliminate_letter(cs, index)
                expected = saturate_on(models_of_clauses(cs), {index})
                assert models_of_clauses(projected) == expected

    def test_eliminated_letter_absent(self):
        cs = ClauseSet.from_strs(VOCAB, ["A1 | A2", "~A1 | A3"])
        assert 0 not in eliminate_letter(cs, 0).prop_indices

    def test_eliminating_unused_letter_is_identity_up_to_reduce(self):
        cs = ClauseSet.from_strs(VOCAB, ["A1 | A2"])
        assert eliminate_letter(cs, 4) == cs

    def test_unsatisfiable_stays_unsatisfiable_if_letter_irrelevant(self):
        cs = ClauseSet.from_strs(VOCAB, ["A1", "~A1"])
        projected = eliminate_letter(cs, 2)
        assert models_of_clauses(projected) == frozenset()


class TestUnitResolve:
    def test_strikes_negated_literals(self):
        cs = ClauseSet.from_strs(VOCAB, ["~A1 | A2", "A3 | ~A2"])
        result = unit_resolve(cs, [make_literal(0)])  # assume A1
        assert clause_of([make_literal(1)]) in result

    def test_total_false_assignment_produces_empty_clause(self):
        cs = ClauseSet.from_strs(VOCAB, ["A1 | A2"])
        result = unit_resolve(cs, [make_literal(0, False), make_literal(1, False)])
        assert result.has_empty_clause

    def test_satisfied_clauses_not_removed(self):
        # The paper's unitres only strikes literals; it never deletes clauses.
        cs = ClauseSet.from_strs(VOCAB, ["A1 | A2"])
        result = unit_resolve(cs, [make_literal(0)])
        assert clause_of([make_literal(0), make_literal(1)]) in result


class TestResolutionClosure:
    def test_refutation_completeness_on_unsat_set(self):
        cs = ClauseSet.from_strs(
            VOCAB, ["A1 | A2", "~A1 | A2", "A1 | ~A2", "~A1 | ~A2"]
        )
        assert frozenset() in resolution_closure(cs).clauses

    def test_satisfiable_set_never_derives_empty_clause(self):
        cs = ClauseSet.from_strs(VOCAB, ["A1 | A2", "~A2 | A3"])
        assert frozenset() not in resolution_closure(cs).clauses

    def test_guard_raises_on_blowup(self):
        import itertools

        clauses = [
            " | ".join(f"{'~' if s else ''}A{i+1}" for i, s in enumerate(signs[:4]))
            for signs in itertools.product([0, 1], repeat=4)
        ]
        big = ClauseSet.from_strs(VOCAB, clauses[:-1])
        with pytest.raises(MemoryError):
            resolution_closure(big, max_clauses=10)

    def test_closure_is_a_fixpoint(self):
        # resolution_closure(resolution_closure(S)) == resolution_closure(S):
        # saturation really saturates, on hand-picked and random inputs.
        import random

        samples = [
            ClauseSet.from_strs(VOCAB, ["A1 | A2", "~A1 | A3", "~A2 | A3"]),
            ClauseSet.from_strs(VOCAB, ["A1", "~A1 | A2", "A3 | ~A2", "A4 | A5"]),
            ClauseSet.tautology(VOCAB),
            ClauseSet.contradiction(VOCAB),
        ]
        rng = random.Random(87)
        for _ in range(20):
            clauses = []
            for _ in range(rng.randint(1, 8)):
                letters = rng.sample(range(5), rng.randint(1, 3))
                clauses.append(
                    clause_of(make_literal(i, rng.random() < 0.5) for i in letters)
                )
            samples.append(ClauseSet(VOCAB, clauses))
        for cs in samples:
            closed = resolution_closure(cs)
            assert resolution_closure(closed) == closed

    def test_rclosure_is_a_fixpoint_on_its_letters(self):
        cs = ClauseSet.from_strs(VOCAB, ["A1 | A2", "~A2 | A3", "~A3 | A4"])
        closed = rclosure(cs, [1, 2])
        assert rclosure(closed, [1, 2]) == closed


class TestUnitResolveCounters:
    """Regression: the strike counter (and provenance) must count only
    genuine additions -- when two clauses collapse to the same reduced
    clause, or the residue already exists, nothing new was derived."""

    def _struck(self, cs, literals):
        from repro.obs import core as obs

        obs.enable()
        obs.reset()
        try:
            result = unit_resolve(cs, literals)
            return result, obs.counters().snapshot().get(
                "logic.resolution.literals_struck", 0
            )
        finally:
            obs.reset()
            obs.disable()

    def test_genuine_strikes_counted(self):
        cs = ClauseSet.from_strs(VOCAB, ["A1 | ~A2", "A3 | ~A4"])
        result, struck = self._struck(cs, [2, 4])
        assert result == ClauseSet.from_strs(VOCAB, ["A1", "A3"])
        assert struck == 2

    def test_strike_into_existing_clause_not_counted(self):
        cs = ClauseSet.from_strs(VOCAB, ["A1 | ~A2", "A1"])
        result, struck = self._struck(cs, [2])
        assert result == ClauseSet.from_strs(VOCAB, ["A1"])
        assert struck == 0

    def test_collapsing_clauses_count_once(self):
        # Both clauses reduce to A1; only the first addition is genuine.
        cs = ClauseSet.from_strs(VOCAB, ["A1 | ~A2", "A1 | ~A3"])
        result, struck = self._struck(cs, [2, 3])
        assert result == ClauseSet.from_strs(VOCAB, ["A1"])
        assert struck == 1

    def test_collapsed_duplicate_still_has_a_valid_derivation(self):
        from repro.obs import provenance

        cs = ClauseSet.from_strs(VOCAB, ["A1 | ~A2", "A1 | ~A3"])
        with provenance.recording() as rec:
            result = unit_resolve(cs, [2, 3])
            target = frozenset({1})
            assert target in result.clauses
            steps = rec.derivation(target)
        assert steps is not None
        assert provenance.verify_derivation(steps, target=target) == []
