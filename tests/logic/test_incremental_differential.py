"""Differential tests: incremental closure maintenance vs scratch kernels.

The incremental engine promises *bit-identical* results: after any
sequence of single-clause inserts and deletes, every maintained query
(``rclosure``, ``resolution_closure``, ``prime_implicates``,
``reduce``) equals the scratch kernel run on the final clause set --
same ``ClauseSet`` values, same budget errors.  This module drives
hundreds of seeded random insert/delete walks (vocabularies up to 40
letters), through both the :class:`IncrementalClosure` API and the
enabled-flag kernel routing, including delete-after-insert churn and
budget-overflow recovery.

Full-closure walks stay on small vocabularies (total resolution is
exponential -- the scratch comparator, not the engine, is the cost);
the wide-vocabulary walks exercise ``reduce`` and few-pivot
``rclosure``, which stay polynomial.
"""

import random

import pytest

from repro.cache import core as cache
from repro.errors import ClosureBudgetError
from repro.logic import incremental
from repro.logic.clauses import Clause, ClauseSet, make_literal
from repro.logic.implicates import prime_implicates
from repro.logic.incremental import IncrementalClosure
from repro.logic.propositions import Vocabulary
from repro.logic.resolution import rclosure, resolution_closure


@pytest.fixture(autouse=True)
def _clean_slate():
    incremental.disable_incremental()
    incremental.reset_incremental()
    cache.disable_cache()
    cache.clear_caches()
    yield
    incremental.disable_incremental()
    incremental.reset_incremental()
    cache.disable_cache()
    cache.clear_caches()


def _random_clause(rng: random.Random, n: int, max_width: int) -> Clause:
    width = rng.randint(1, min(max_width, n))
    letters = rng.sample(range(n), width)
    return frozenset(make_literal(i, rng.random() < 0.5) for i in letters)


def _step(rng: random.Random, current: set[Clause], n: int, max_width: int):
    """One walk step: (kind, clause).  Deletes prefer churn -- removing
    a clause that an earlier step inserted -- so delete-after-insert
    retraction is exercised constantly, not incidentally."""
    if current and rng.random() < 0.4:
        return "delete", rng.choice(sorted(current, key=sorted))
    return "insert", _random_clause(rng, n, max_width)


def _apply(kind: str, clause: Clause, current: set[Clause]) -> None:
    if kind == "insert":
        current.add(clause)
    else:
        current.discard(clause)


class TestDirectEngineDifferential:
    def test_full_kernels_on_small_vocabulary_walks(self):
        # 120 sequences x 8 steps, every maintained query checked
        # against its scratch kernel at every step.
        rng = random.Random(1987)
        for trial in range(120):
            n = rng.randint(2, 7)
            vocab = Vocabulary.standard(n)
            current: set[Clause] = {
                _random_clause(rng, n, 3) for _ in range(rng.randint(1, 4))
            }
            inc = IncrementalClosure(ClauseSet(vocab, current))
            pivots = tuple(rng.sample(range(n), rng.randint(1, min(2, n))))
            for step in range(8):
                kind, clause = _step(rng, current, n, 3)
                _apply(kind, clause, current)
                if kind == "insert":
                    inc.insert_clause(clause)
                else:
                    inc.delete_clause(clause)
                scratch = ClauseSet(vocab, current)
                label = f"trial {trial} step {step} ({kind} {sorted(clause)})"
                assert inc.current == scratch, label
                assert inc.resolution_closure() == resolution_closure(
                    scratch
                ), label
                assert inc.prime_implicates() == prime_implicates(
                    scratch
                ), label
                assert inc.rclosure(pivots) == rclosure(scratch, pivots), label
                assert inc.reduce() == scratch.reduce(), label

    def test_reduce_and_rclosure_on_wide_vocabulary_walks(self):
        # 120 sequences over vocabularies up to 40 letters; reduce and
        # few-pivot rclosure stay cheap at this width.
        rng = random.Random(315)
        for trial in range(120):
            n = rng.randint(10, 40)
            vocab = Vocabulary.standard(n)
            current: set[Clause] = {
                _random_clause(rng, n, 4) for _ in range(rng.randint(2, 10))
            }
            inc = IncrementalClosure(ClauseSet(vocab, current))
            pivots = tuple(rng.sample(range(n), 2))
            for step in range(10):
                kind, clause = _step(rng, current, n, 4)
                _apply(kind, clause, current)
                if kind == "insert":
                    inc.insert_clause(clause)
                else:
                    inc.delete_clause(clause)
                scratch = ClauseSet(vocab, current)
                label = f"trial {trial} step {step} ({kind} {sorted(clause)})"
                assert inc.reduce() == scratch.reduce(), label
                assert inc.rclosure(pivots) == rclosure(scratch, pivots), label

    def test_insert_then_delete_round_trips_exactly(self):
        # Churn walks: every inserted clause is later deleted, so the
        # engine must retract whole derivation cones repeatedly and
        # land back on the base set's closures.
        rng = random.Random(238)
        for trial in range(40):
            n = rng.randint(3, 7)
            vocab = Vocabulary.standard(n)
            base: set[Clause] = {
                _random_clause(rng, n, 3) for _ in range(rng.randint(1, 3))
            }
            inc = IncrementalClosure(ClauseSet(vocab, base))
            reference_closure = inc.resolution_closure()
            reference_reduced = inc.reduce()
            inserted = []
            for _ in range(rng.randint(1, 4)):
                clause = _random_clause(rng, n, 3)
                if clause in base:
                    continue
                inserted.append(clause)
                inc.insert_clause(clause)
            for clause in reversed(inserted):
                inc.delete_clause(clause)
            label = f"trial {trial}"
            assert inc.current.clauses == frozenset(base), label
            assert inc.resolution_closure() == reference_closure, label
            assert inc.reduce() == reference_reduced, label


class TestRoutedKernelDifferential:
    def test_routed_walks_match_scratch(self):
        # 40 sequences x 6 steps through the enabled-flag routing: the
        # scratch comparator runs with the flag off, the routed query
        # with it on, on the same clause set.
        rng = random.Random(4655)
        for trial in range(40):
            n = rng.randint(2, 7)
            vocab = Vocabulary.standard(n)
            current: set[Clause] = {
                _random_clause(rng, n, 3) for _ in range(rng.randint(1, 4))
            }
            pivots = tuple(rng.sample(range(n), 1))
            for step in range(6):
                kind, clause = _step(rng, current, n, 3)
                _apply(kind, clause, current)
                cs = ClauseSet(vocab, current)
                incremental.disable_incremental()
                scratch = (
                    resolution_closure(cs),
                    prime_implicates(cs),
                    rclosure(cs, pivots),
                    cs.reduce(),
                )
                incremental.enable_incremental()
                routed = (
                    resolution_closure(cs),
                    prime_implicates(cs),
                    rclosure(cs, pivots),
                    cs.reduce(),
                )
                assert routed == scratch, f"trial {trial} step {step}"

    def test_budget_overflow_recovery_in_walks(self):
        # Walks queried under a tight budget: the routed kernel must
        # raise exactly when scratch raises, never pollute the
        # memo-cache on the failing path, and keep serving exact
        # results after each overflow forced a track eviction.
        rng = random.Random(5921)
        cache.enable_cache()
        for trial in range(30):
            n = rng.randint(3, 6)
            vocab = Vocabulary.standard(n)
            current: set[Clause] = {_random_clause(rng, n, 3)}
            budget = rng.choice((3, 6, 12))
            for step in range(6):
                kind, clause = _step(rng, current, n, 3)
                _apply(kind, clause, current)
                cs = ClauseSet(vocab, current)
                incremental.disable_incremental()
                cache.clear_caches()
                try:
                    scratch = resolution_closure(cs, max_clauses=budget)
                except ClosureBudgetError:
                    scratch = ClosureBudgetError
                cache.clear_caches()
                incremental.enable_incremental()
                label = f"trial {trial} step {step} budget {budget}"
                if scratch is ClosureBudgetError:
                    with pytest.raises(ClosureBudgetError):
                        resolution_closure(cs, max_clauses=budget)
                    key = (cs.vocabulary, cs.fingerprint, budget)
                    assert (
                        cache.peek("logic.resolution_closure", key)
                        is cache.MISS
                    ), label
                else:
                    assert (
                        resolution_closure(cs, max_clauses=budget) == scratch
                    ), label
