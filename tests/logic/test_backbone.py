"""Tests for backbone computation (repro.logic.sat.backbone_literals)."""

import random

from hypothesis import given, settings, strategies as st

from repro.logic.clauses import ClauseSet, clause_of, literal_to_str, make_literal
from repro.logic.propositions import Vocabulary
from repro.logic.sat import backbone_literals
from repro.logic.semantics import models_of_clauses, sat_literals

VOCAB = Vocabulary.standard(5)


def cs(*texts):
    return ClauseSet.from_strs(VOCAB, texts)


def backbone_names(clause_set):
    return frozenset(
        literal_to_str(clause_set.vocabulary, lit)
        for lit in backbone_literals(clause_set)
    )


class TestBackbone:
    def test_unit_clauses_are_backbone(self):
        assert backbone_names(cs("A1", "~A3")) == frozenset({"A1", "~A3"})

    def test_propagated_literals_found(self):
        assert backbone_names(cs("A1", "~A1 | A2")) == frozenset({"A1", "A2"})

    def test_disjunction_forces_nothing(self):
        assert backbone_names(cs("A1 | A2")) == frozenset()

    def test_hidden_forced_literal(self):
        # (A1 | A2) & (A1 | ~A2): A1 forced without appearing as a unit.
        assert backbone_names(cs("A1 | A2", "A1 | ~A2")) == frozenset({"A1"})

    def test_tautology_has_empty_backbone(self):
        assert backbone_literals(ClauseSet.tautology(VOCAB)) == frozenset()

    def test_unsatisfiable_forces_everything(self):
        got = backbone_names(cs("A1", "~A1"))
        assert "A3" in got and "~A3" in got

    def test_agrees_with_world_enumeration(self):
        rng = random.Random(55)
        for _ in range(25):
            clauses = [
                clause_of(
                    make_literal(i, rng.random() < 0.5)
                    for i in rng.sample(range(5), rng.randint(1, 3))
                )
                for _ in range(rng.randint(0, 6))
            ]
            state = ClauseSet(VOCAB, clauses)
            expected = sat_literals(VOCAB, models_of_clauses(state))
            assert backbone_names(state) == expected

    def test_scales_past_enumeration_limit(self):
        # 40 letters: 2^40 worlds, trivially handled by SAT probing.
        big = Vocabulary.standard(40)
        chain = ClauseSet.from_strs(
            big,
            ["A1"] + [f"~A{i} | A{i + 1}" for i in range(1, 40)],
        )
        backbone = backbone_literals(chain)
        assert backbone == frozenset(range(1, 41))


big_vocab_clauses = st.frozensets(
    st.frozensets(
        st.integers(min_value=1, max_value=4).flatmap(
            lambda i: st.sampled_from([i, -i])
        ),
        min_size=1,
        max_size=3,
    ),
    max_size=5,
)


@given(big_vocab_clauses)
@settings(max_examples=100, deadline=None)
def test_backbone_matches_enumeration_property(clauses):
    vocab = Vocabulary.standard(4)
    state = ClauseSet(vocab, clauses)
    expected = sat_literals(vocab, models_of_clauses(state))
    got = frozenset(
        literal_to_str(vocab, lit) for lit in backbone_literals(state)
    )
    assert got == expected


class TestSessionIntegration:
    def test_clausal_certain_literals_on_large_vocabulary(self):
        from repro.hlu.session import IncompleteDatabase

        db = IncompleteDatabase.over(40)  # far beyond world enumeration
        db.assert_("A1", "~A1 | A2", "A39 | A40")
        literals = db.certain_literals()
        assert "A1" in literals and "A2" in literals
        assert "A39" not in literals
