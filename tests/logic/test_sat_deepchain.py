"""Regression: deep propagation/decision chains must not exhaust the stack.

The seed ``_dpll`` was recursive: every pure-literal round and every
branching decision consumed a Python frame, so an E11-style Wilkins
instance -- a long chain of implications over a few thousand letters --
blew the default 1000-frame recursion limit.  A verbatim copy of the
seed solver is kept here (``_reference_solve``) to pin the failure mode;
the shipped iterative solver must handle the same instance.
"""

import sys
from collections import Counter

import pytest

from repro.logic.clauses import ClauseSet, make_literal
from repro.logic.propositions import Vocabulary
from repro.logic.sat import count_models_exact, solve
from repro.logic.semantics import models_of_clauses


# ---------------------------------------------------------------------------
# the seed recursive solver, verbatim minus obs instrumentation
# ---------------------------------------------------------------------------

def _reference_propagate(clauses, assignment):
    work = list(clauses)
    while True:
        unit = None
        simplified = []
        for clause in work:
            remaining = []
            satisfied = False
            for literal in clause:
                index = abs(literal) - 1
                if index in assignment:
                    if assignment[index] == (literal > 0):
                        satisfied = True
                        break
                else:
                    remaining.append(literal)
            if satisfied:
                continue
            if not remaining:
                return None
            if len(remaining) == 1 and unit is None:
                unit = remaining[0]
            simplified.append(frozenset(remaining))
        if unit is None:
            return simplified
        assignment[abs(unit) - 1] = unit > 0
        work = simplified


def _reference_dpll(clauses, assignment):
    simplified = _reference_propagate(clauses, assignment)
    if simplified is None:
        return None
    if not simplified:
        return assignment
    polarity = {}
    for clause in simplified:
        for literal in clause:
            index = abs(literal) - 1
            sign = 1 if literal > 0 else -1
            polarity[index] = (
                polarity.get(index, sign) if polarity.get(index, sign) == sign else 0
            )
    pure = {index: sign for index, sign in polarity.items() if sign != 0}
    if pure:
        for index, sign in pure.items():
            if index not in assignment:
                assignment[index] = sign > 0
        remaining = [
            clause
            for clause in simplified
            if not any(
                (abs(lit) - 1) in pure and (pure[abs(lit) - 1] > 0) == (lit > 0)
                for lit in clause
            )
        ]
        if len(remaining) != len(simplified):
            return _reference_dpll(remaining, assignment)
    counts = Counter()
    for clause in simplified:
        counts.update(clause)
    literal, _ = counts.most_common(1)[0]
    first = literal > 0
    for value in (first, not first):
        trial = dict(assignment)
        trial[abs(literal) - 1] = value
        result = _reference_dpll(simplified, trial)
        if result is not None:
            return result
    return None


def _reference_solve(clause_set):
    return _reference_dpll(list(clause_set.clauses), {})


# ---------------------------------------------------------------------------
# the deep-chain instance
# ---------------------------------------------------------------------------

def implication_chain(n: int) -> ClauseSet:
    """``(~A_1 | A_2), (~A_2 | A_3), ...``: ``n`` chained implications.

    With no unit clause the seed solver could not discharge the chain in
    its (iterative) propagation loop; instead each pure-literal round
    stripped one implication off each end and recursed, consuming ~n/2
    stack frames.
    """
    vocab = Vocabulary.standard(n + 1)
    clauses = [
        frozenset({-make_literal(i), make_literal(i + 1)}) for i in range(n)
    ]
    return ClauseSet(vocab, clauses)


CHAIN_LENGTH = 3000  # pure-literal recursion depth ~1500 > the 1000-frame default


class TestDeepChainRegression:
    def test_seed_recursive_dpll_blows_the_stack(self):
        cs = implication_chain(CHAIN_LENGTH)
        limit = sys.getrecursionlimit()
        sys.setrecursionlimit(1000)  # the CPython default, pinned
        try:
            with pytest.raises(RecursionError):
                _reference_solve(cs)
        finally:
            sys.setrecursionlimit(limit)

    def test_iterative_solver_handles_the_same_chain(self):
        cs = implication_chain(CHAIN_LENGTH)
        model = solve(cs)
        assert model is not None
        for clause in cs.clauses:
            assert any(
                model.get(abs(lit) - 1, lit > 0) == (lit > 0) for lit in clause
            ), f"clause {set(clause)} unsatisfied"

    def test_iterative_counting_handles_a_deep_chain(self):
        # n chained implications over n+1 letters have exactly n+2 models
        # (the set of true letters is an upward-closed suffix).
        n = 1500
        assert count_models_exact(implication_chain(n)) == n + 2

    def test_count_formula_cross_checked_by_enumeration(self):
        for n in (1, 2, 5, 9):
            cs = implication_chain(n)
            assert count_models_exact(cs) == len(models_of_clauses(cs)) == n + 2

    def test_deep_unit_propagation_chain(self):
        # With a unit at the head the whole chain is forced; both the
        # propagation queue and the trail must take 2001 assignments.
        n = 2000
        vocab = Vocabulary.standard(n + 1)
        clauses = [frozenset({make_literal(0)})] + [
            frozenset({-make_literal(i), make_literal(i + 1)}) for i in range(n)
        ]
        cs = ClauseSet(vocab, clauses)
        model = solve(cs)
        assert model is not None
        assert all(model[i] for i in range(n + 1))
        # ... and forcing the tail false is a (deep) refutation.
        assert solve(cs, assumptions=(-make_literal(n),)) is None
