"""Tests for formula -> clause conversion (repro.logic.cnf)."""

import pytest

from repro.errors import VocabularyError
from repro.logic.clauses import ClauseSet
from repro.logic.cnf import clauses_to_formula, formula_to_clauses, formulas_to_clauses
from repro.logic.parser import parse_formula, parse_formulas
from repro.logic.propositions import Vocabulary
from repro.logic.semantics import models_of_clauses, models_of_formulas

VOCAB = Vocabulary.standard(4)


def cnf(text: str) -> ClauseSet:
    return formula_to_clauses(parse_formula(text), VOCAB)


class TestBasicForms:
    def test_literal(self):
        assert cnf("A1") == ClauseSet.from_strs(VOCAB, ["A1"])
        assert cnf("~A1") == ClauseSet.from_strs(VOCAB, ["~A1"])

    def test_clause_passthrough(self):
        assert cnf("A1 | ~A2 | A3") == ClauseSet.from_strs(VOCAB, ["A1 | ~A2 | A3"])

    def test_conjunction_splits(self):
        assert cnf("A1 & (A2 | A3)") == ClauseSet.from_strs(VOCAB, ["A1", "A2 | A3"])

    def test_constants(self):
        assert cnf("1") == ClauseSet.tautology(VOCAB)
        assert cnf("0") == ClauseSet.contradiction(VOCAB)

    def test_implication(self):
        assert cnf("A1 -> (A2 & A3)") == ClauseSet.from_strs(
            VOCAB, ["~A1 | A2", "~A1 | A3"]
        )

    def test_biconditional(self):
        assert cnf("A1 <-> A2") == ClauseSet.from_strs(VOCAB, ["~A1 | A2", "A1 | ~A2"])

    def test_double_negation(self):
        assert cnf("~~A1") == cnf("A1")

    def test_de_morgan(self):
        assert cnf("~(A1 & A2)") == ClauseSet.from_strs(VOCAB, ["~A1 | ~A2"])
        assert cnf("~(A1 | A2)") == ClauseSet.from_strs(VOCAB, ["~A1", "~A2"])


class TestSimplification:
    def test_tautologous_clause_dropped(self):
        assert cnf("A1 | ~A1") == ClauseSet.tautology(VOCAB)

    def test_tautologous_disjunct_absorbs(self):
        assert cnf("(A1 | ~A1) | A2") == ClauseSet.tautology(VOCAB)

    def test_subsumption_applied(self):
        # (A1) & (A1 | A2) distributes to subsumable clauses.
        assert cnf("A1 & (A1 | A2)") == ClauseSet.from_strs(VOCAB, ["A1"])

    def test_contradictory_formula(self):
        assert cnf("A1 & ~A1") == ClauseSet.from_strs(VOCAB, ["A1", "~A1"])
        # That set has no models even though the empty clause is not present.
        assert models_of_clauses(cnf("A1 & ~A1")) == frozenset()


class TestSemanticPreservation:
    """The conversion must preserve Mod over the same vocabulary exactly."""

    SAMPLES = [
        "A1",
        "~(A1 -> A2)",
        "(A1 | A2) & (~A1 | A3)",
        "A1 <-> (A2 <-> A3)",
        "(A1 & A2) | (A3 & A4)",
        "~((A1 | ~A2) & (A3 -> A4))",
        "(A1 -> A2) -> (A3 -> A4)",
        "1 & A1",
        "0 | A2",
        "~(A1 <-> A1)",
    ]

    @pytest.mark.parametrize("text", SAMPLES)
    def test_models_preserved(self, text):
        formula = parse_formula(text)
        expected = models_of_formulas(VOCAB, [formula])
        got = models_of_clauses(formula_to_clauses(formula, VOCAB))
        assert got == expected

    @pytest.mark.parametrize("text", SAMPLES)
    def test_roundtrip_through_formula(self, text):
        clause_set = cnf(text)
        back = formula_to_clauses(clauses_to_formula(clause_set), VOCAB)
        assert models_of_clauses(back) == models_of_clauses(clause_set)


class TestBatchConversion:
    def test_formulas_to_clauses_is_conjunction(self):
        fs = parse_formulas(["A1 | A2", "~A1 | A3"])
        combined = formulas_to_clauses(fs, VOCAB)
        assert combined == ClauseSet.from_strs(VOCAB, ["A1 | A2", "~A1 | A3"])

    def test_empty_collection_is_tautology(self):
        assert formulas_to_clauses([], VOCAB) == ClauseSet.tautology(VOCAB)


class TestErrors:
    def test_unknown_letter_rejected(self):
        with pytest.raises(VocabularyError):
            formula_to_clauses(parse_formula("B9"), VOCAB)
