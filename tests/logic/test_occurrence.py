"""Tests for the literal-occurrence index (repro.logic.occurrence)."""

from repro.logic.clauses import clause_of
from repro.logic.occurrence import OccurrenceIndex

C12 = clause_of([1, 2])
C13n = clause_of([-1, 3])
C23 = clause_of([2, 3])


class TestOccurrenceIndex:
    def test_buckets_reflect_membership(self):
        index = OccurrenceIndex([C12, C13n])
        assert index.clauses_with(1) == {C12}
        assert index.clauses_with(-1) == {C13n}
        assert index.clauses_with(3) == {C13n}
        assert index.clauses_with(-3) == frozenset()

    def test_add_is_idempotent(self):
        index = OccurrenceIndex([C12])
        assert not index.add(C12)
        assert index.add(C23)
        assert len(index) == 2
        assert index.clauses_with(2) == {C12, C23}

    def test_discard_removes_from_every_bucket(self):
        index = OccurrenceIndex([C12, C23])
        assert index.discard(C12)
        assert not index.discard(C12)
        assert index.clauses_with(1) == frozenset()
        assert index.clauses_with(2) == {C23}
        assert len(index) == 1

    def test_iteration_and_containment(self):
        index = OccurrenceIndex([C12, C13n])
        assert set(index) == {C12, C13n}
        assert C12 in index
        assert C23 not in index
        index.add(C23)
        assert frozenset(index) == frozenset({C12, C13n, C23})

    def test_empty_clause_is_indexable(self):
        index = OccurrenceIndex([frozenset()])
        assert frozenset() in index
        assert len(index) == 1
        index.discard(frozenset())
        assert len(index) == 0
