"""Tests for prime implicates (repro.logic.implicates)."""


from repro.logic.clauses import ClauseSet, clause_of, make_literal
from repro.logic.implicates import (
    is_implicate,
    is_prime_implicate,
    mask_via_implicates,
    prime_implicates,
)
from repro.logic.propositions import Vocabulary
from repro.logic.semantics import models_of_clauses

VOCAB = Vocabulary.standard(4)


def cs(*texts):
    return ClauseSet.from_strs(VOCAB, texts)


class TestPrimeImplicates:
    def test_textbook_example(self):
        # {A1 | A2, ~A1 | A3} has the resolvent A2 | A3 as a third prime.
        assert prime_implicates(cs("A1 | A2", "~A1 | A3")) == cs(
            "A1 | A2", "~A1 | A3", "A2 | A3"
        )

    def test_subsumed_inputs_removed(self):
        assert prime_implicates(cs("A1", "A1 | A2")) == cs("A1")

    def test_tautology_has_no_implicates(self):
        assert prime_implicates(ClauseSet.tautology(VOCAB)) == ClauseSet.tautology(
            VOCAB
        )

    def test_contradiction_has_only_the_empty_clause(self):
        assert prime_implicates(cs("A1", "~A1")) == ClauseSet.contradiction(VOCAB)

    def test_canonical_form_identifies_equivalent_sets(self):
        left = cs("~A1 | A2")
        right = cs("~A1 | A2", "~A1 | A2 | A3")
        assert prime_implicates(left) == prime_implicates(right)

    def test_models_preserved(self):
        for state in (cs("A1 | A2", "~A2 | A3"), cs("A1", "A2 | ~A3")):
            assert models_of_clauses(prime_implicates(state)) == models_of_clauses(
                state
            )

    def test_hidden_unit_is_exposed(self):
        # (A1 | A2) & (A1 | ~A2) has prime implicate A1.
        assert prime_implicates(cs("A1 | A2", "A1 | ~A2")) == cs("A1")


class TestImplicateChecks:
    def test_is_implicate(self):
        state = cs("A1 | A2", "~A1 | A3")
        assert is_implicate(state, clause_of([make_literal(1), make_literal(2)]))
        assert not is_implicate(state, clause_of([make_literal(0)]))

    def test_tautologous_clause_is_trivially_implicate(self):
        assert is_implicate(cs("A1"), clause_of([2, -2]))

    def test_is_prime_implicate(self):
        state = cs("A1 | A2", "~A1 | A3")
        assert is_prime_implicate(state, clause_of([2, 3]))     # A2 | A3
        assert not is_prime_implicate(state, clause_of([2, 3, 4]))  # widened
        assert not is_prime_implicate(state, clause_of([4]))

    def test_every_prime_implicates_member_is_prime(self):
        state = cs("A1 | A2", "~A2 | A3", "~A3 | A4")
        for clause in prime_implicates(state):
            assert is_prime_implicate(state, clause)


class TestMaskViaImplicates:
    def test_agrees_with_resolve_then_drop(self):
        from repro.blu.clausal_mask import clausal_mask

        samples = [
            cs("~A1 | A3", "A1 | A4", "A3 | A4"),
            cs("A1 | A2", "~A2 | A3"),
            cs("A1", "~A1 | A2"),
        ]
        for state in samples:
            for indices in ([0], [1], [0, 1]):
                via_implicates = mask_via_implicates(state, indices)
                via_elimination = clausal_mask(state, indices)
                assert models_of_clauses(via_implicates) == models_of_clauses(
                    via_elimination
                )

    def test_masked_letters_absent(self):
        out = mask_via_implicates(cs("A1 | A2", "~A1 | A3"), [0])
        assert 0 not in out.prop_indices
