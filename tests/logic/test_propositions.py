"""Tests for vocabularies (repro.logic.propositions)."""

import pytest

from repro.errors import VocabularyError, VocabularyMismatchError
from repro.logic.propositions import Vocabulary, check_same_vocabulary


class TestConstruction:
    def test_standard_names(self):
        assert Vocabulary.standard(3).names == ("A1", "A2", "A3")

    def test_standard_custom_prefix(self):
        assert Vocabulary.standard(2, prefix="P").names == ("P1", "P2")

    def test_empty_vocabulary_allowed(self):
        assert len(Vocabulary([])) == 0

    def test_negative_size_rejected(self):
        with pytest.raises(VocabularyError):
            Vocabulary.standard(-1)

    def test_duplicate_names_rejected(self):
        with pytest.raises(VocabularyError, match="duplicate"):
            Vocabulary(["A", "B", "A"])

    def test_empty_name_rejected(self):
        with pytest.raises(VocabularyError):
            Vocabulary([""])

    def test_reserved_characters_rejected(self):
        for bad in ("A|B", "A B", "A(B)", "~A", "A&B"):
            with pytest.raises(VocabularyError):
                Vocabulary([bad])

    def test_leading_digit_rejected(self):
        with pytest.raises(VocabularyError):
            Vocabulary(["1A"])

    def test_ground_fact_style_names_allowed(self):
        # Grounded relational atoms use dots/underscores (Section 1.2).
        vocab = Vocabulary(["R.Jones.D1.T2", "R_Smith_D2_T1"])
        assert "R.Jones.D1.T2" in vocab


class TestLookup:
    def test_index_roundtrip(self):
        vocab = Vocabulary.standard(5)
        for i, name in enumerate(vocab):
            assert vocab.index_of(name) == i
            assert vocab.name_of(i) == name

    def test_unknown_name_raises(self):
        with pytest.raises(VocabularyError, match="unknown"):
            Vocabulary.standard(2).index_of("A3")

    def test_out_of_range_index_raises(self):
        with pytest.raises(VocabularyError):
            Vocabulary.standard(2).name_of(2)

    def test_contains(self):
        vocab = Vocabulary.standard(2)
        assert "A1" in vocab
        assert "A9" not in vocab

    def test_subset_indices(self):
        vocab = Vocabulary.standard(4)
        assert vocab.subset_indices(["A2", "A4"]) == frozenset({1, 3})


class TestIdentity:
    def test_equality_by_name_sequence(self):
        assert Vocabulary.standard(3) == Vocabulary(["A1", "A2", "A3"])

    def test_order_matters(self):
        assert Vocabulary(["A1", "A2"]) != Vocabulary(["A2", "A1"])

    def test_hashable_and_usable_as_key(self):
        d = {Vocabulary.standard(2): "x"}
        assert d[Vocabulary(["A1", "A2"])] == "x"

    def test_repr_is_compact_for_large_vocabularies(self):
        text = repr(Vocabulary.standard(100))
        assert "100 names" in text


class TestExtension:
    def test_extended_appends(self):
        vocab = Vocabulary.standard(2).extended(["B1"])
        assert vocab.names == ("A1", "A2", "B1")

    def test_extended_rejects_duplicates(self):
        with pytest.raises(VocabularyError):
            Vocabulary.standard(2).extended(["A1"])

    def test_fresh_names_avoid_collisions(self):
        vocab = Vocabulary(["H1", "H3", "A1"])
        assert vocab.fresh_names(3) == ("H2", "H4", "H5")

    def test_fresh_names_custom_stem(self):
        assert Vocabulary.standard(1).fresh_names(2, stem="A") == ("A2", "A3")


class TestCheckSameVocabulary:
    class _Holder:
        def __init__(self, vocab):
            self.vocabulary = vocab

    def test_accepts_matching(self):
        vocab = Vocabulary.standard(2)
        got = check_same_vocabulary(self._Holder(vocab), self._Holder(vocab))
        assert got == vocab

    def test_rejects_mismatch(self):
        with pytest.raises(VocabularyMismatchError):
            check_same_vocabulary(
                self._Holder(Vocabulary.standard(2)),
                self._Holder(Vocabulary.standard(3)),
            )

    def test_rejects_empty_argument_list(self):
        with pytest.raises(VocabularyMismatchError):
            check_same_vocabulary()
