"""Tests for bit-packed structures/worlds (repro.logic.structures)."""

import pytest

from repro.errors import VocabularyError
from repro.logic.parser import parse_formula
from repro.logic.propositions import Vocabulary
from repro.logic.structures import (
    all_worlds,
    flip_bit,
    flip_bits,
    get_bit,
    satisfies,
    saturate_on,
    set_bit,
    world_count,
    world_from_dict,
    world_from_true_set,
    world_str,
    world_to_dict,
    world_to_true_set,
)

VOCAB = Vocabulary.standard(4)


class TestEnumeration:
    def test_world_count(self):
        assert world_count(VOCAB) == 16
        assert world_count(Vocabulary([])) == 1

    def test_all_worlds_complete_and_distinct(self):
        worlds = list(all_worlds(VOCAB))
        assert len(worlds) == 16
        assert len(set(worlds)) == 16

    def test_enumeration_guard(self):
        with pytest.raises(VocabularyError, match="refusing"):
            list(all_worlds(Vocabulary.standard(30)))


class TestConversion:
    def test_dict_roundtrip(self):
        assignment = {"A1": True, "A2": False, "A3": True, "A4": False}
        world = world_from_dict(VOCAB, assignment)
        assert world_to_dict(VOCAB, world) == assignment

    def test_true_set_roundtrip(self):
        world = world_from_true_set(VOCAB, ["A2", "A4"])
        assert world_to_true_set(VOCAB, world) == frozenset({"A2", "A4"})

    def test_missing_letter_rejected(self):
        with pytest.raises(VocabularyError, match="missing"):
            world_from_dict(VOCAB, {"A1": True})

    def test_unknown_letter_rejected(self):
        with pytest.raises(VocabularyError):
            world_from_true_set(VOCAB, ["A9"])

    def test_world_str(self):
        world = world_from_true_set(VOCAB, ["A1", "A3"])
        assert world_str(VOCAB, world) == "{A1, ~A2, A3, ~A4}"


class TestBitOps:
    def test_get_set_flip(self):
        world = 0
        world = set_bit(world, 2, True)
        assert get_bit(world, 2) is True
        assert get_bit(world, 0) is False
        assert flip_bit(world, 2) == 0
        assert flip_bits(world, [0, 2]) == 1

    def test_set_bit_idempotent(self):
        world = set_bit(0, 1, True)
        assert set_bit(world, 1, True) == world
        assert set_bit(world, 1, False) == 0


class TestSatisfies:
    def test_against_truth_table(self):
        formula = parse_formula("A1 & ~A2 | A3")
        for world in all_worlds(VOCAB):
            env = world_to_dict(VOCAB, world)
            assert satisfies(VOCAB, world, formula) == formula.evaluate(env)

    def test_constant_formulas(self):
        assert satisfies(VOCAB, 0, parse_formula("1"))
        assert not satisfies(VOCAB, 0, parse_formula("0"))


class TestSaturateOn:
    """saturate_on is the instance-level simple mask (Definition 1.5.3)."""

    def test_empty_index_set_is_identity(self):
        worlds = frozenset({0b0101, 0b0011})
        assert saturate_on(worlds, frozenset()) == worlds

    def test_single_letter_saturation(self):
        # Masking A1 (bit 0) pairs each world with its bit-0 twin.
        worlds = frozenset({0b0000})
        assert saturate_on(worlds, {0}) == frozenset({0b0000, 0b0001})

    def test_saturation_is_idempotent(self):
        worlds = frozenset({0b1010, 0b0001})
        once = saturate_on(worlds, {1, 3})
        assert saturate_on(once, {1, 3}) == once

    def test_saturation_is_monotone_in_worlds(self):
        small = frozenset({0b0001})
        large = frozenset({0b0001, 0b1000})
        assert saturate_on(small, {2}) <= saturate_on(large, {2})

    def test_full_saturation_yields_all_worlds(self):
        worlds = frozenset({0b0110})
        got = saturate_on(worlds, {0, 1, 2, 3})
        assert got == frozenset(range(16))

    def test_result_agrees_with_naive_definition(self):
        # Naive: y in result iff exists x in worlds with x, y equal off P.
        worlds = frozenset({0b0101, 0b1110})
        indices = {0, 2}
        clear = 0b0101  # bits 0 and 2
        naive = frozenset(
            y
            for y in range(16)
            if any((y & ~clear) == (x & ~clear) for x in worlds)
        )
        assert saturate_on(worlds, indices) == naive
