"""Unit tests for :mod:`repro.logic.incremental`.

The differential guarantee (routed kernels bit-identical to scratch on
randomized insert/delete sequences) lives in
``test_incremental_differential.py``; this module pins the engine's
mechanics: frontier-seeded insertion, support-count retraction, minimal
-set maintenance, budget parity and staleness, lineage adoption, cache
validation, and provenance recording.
"""

import pytest

from repro.cache import core as cache
from repro.errors import ClosureBudgetError
from repro.logic import incremental
from repro.logic.clauses import ClauseSet
from repro.logic.implicates import prime_implicates
from repro.logic.incremental import IncrementalClosure
from repro.logic.propositions import Vocabulary
from repro.logic.resolution import rclosure, resolution_closure
from repro.obs import core as obs
from repro.obs import provenance


@pytest.fixture(autouse=True)
def _clean_slate():
    """Every test starts and ends with all opt-in layers off and empty."""
    incremental.disable_incremental()
    incremental.reset_incremental()
    cache.disable_cache()
    cache.clear_caches()
    obs.disable()
    obs.reset()
    yield
    incremental.disable_incremental()
    incremental.reset_incremental()
    cache.disable_cache()
    cache.clear_caches()
    obs.disable()
    obs.reset()


def _cs(vocab, *texts):
    return ClauseSet.from_strs(vocab, texts)


class TestIncrementalClosureDeltas:
    def test_insert_matches_scratch_closure(self):
        vocab = Vocabulary.standard(4)
        base = _cs(vocab, "A1 | A2", "~A2 | A3")
        inc = IncrementalClosure(base)
        assert inc.resolution_closure() == resolution_closure(base)
        inc.insert_clause(frozenset({-3, 4}))  # ~A3 | A4
        grown = base.with_clause(frozenset({-3, 4}))
        assert inc.current == grown
        assert inc.resolution_closure() == resolution_closure(grown)
        assert inc.prime_implicates() == prime_implicates(grown)

    def test_delete_retracts_orphaned_resolvents(self):
        vocab = Vocabulary.standard(3)
        base = _cs(vocab, "A1 | A2", "~A2 | A3")
        inc = IncrementalClosure(base)
        closed = inc.resolution_closure()
        assert frozenset({1, 3}) in closed.clauses  # A1 | A3 resolvent
        inc.delete_clause(frozenset({-2, 3}))
        shrunk = _cs(vocab, "A1 | A2")
        assert inc.current == shrunk
        result = inc.resolution_closure()
        assert frozenset({1, 3}) not in result.clauses
        assert result == resolution_closure(shrunk)

    def test_delete_keeps_independently_derivable_clauses(self):
        # A1 | A3 is derivable from either bridge clause; deleting one
        # bridge must keep the resolvent alive via the other derivation.
        vocab = Vocabulary.standard(4)
        base = _cs(vocab, "A1 | A2", "~A2 | A3", "A1 | A4", "~A4 | A3")
        inc = IncrementalClosure(base)
        assert frozenset({1, 3}) in inc.resolution_closure().clauses
        inc.delete_clause(frozenset({-2, 3}))
        remaining = _cs(vocab, "A1 | A2", "A1 | A4", "~A4 | A3")
        assert frozenset({1, 3}) in inc.resolution_closure().clauses
        assert inc.resolution_closure() == resolution_closure(remaining)

    def test_delete_after_insert_round_trips(self):
        vocab = Vocabulary.standard(4)
        base = _cs(vocab, "A1 | A2", "~A2 | A3")
        inc = IncrementalClosure(base)
        before = inc.resolution_closure()
        clause = frozenset({-3, 4})
        inc.insert_clause(clause)
        inc.delete_clause(clause)
        assert inc.current == base
        assert inc.resolution_closure() == before

    def test_rclosure_track_restricts_pivots(self):
        vocab = Vocabulary.standard(4)
        base = _cs(vocab, "A1 | A2", "~A2 | A3", "~A3 | A4")
        inc = IncrementalClosure(base)
        for pivots in ((1,), (1, 2), ()):
            assert inc.rclosure(pivots) == rclosure(base, pivots)
        inc.insert_clause(frozenset({-1, 4}))
        grown = base.with_clause(frozenset({-1, 4}))
        for pivots in ((1,), (1, 2), (0,)):
            assert inc.rclosure(pivots) == rclosure(grown, pivots)

    def test_reduce_track_under_deltas(self):
        vocab = Vocabulary.standard(4)
        base = _cs(vocab, "A1 | A2", "A1 | A2 | A3")
        inc = IncrementalClosure(base)
        assert inc.reduce() == base.reduce()
        # Insert a subsumer: both old clauses fall away.
        inc.insert_clause(frozenset({1}))
        assert inc.reduce().clauses == frozenset({frozenset({1})})
        # Delete it again: the previous minimal is promoted back.
        inc.delete_clause(frozenset({1}))
        assert inc.reduce() == base.reduce()
        assert inc.reduce().clauses == frozenset({frozenset({1, 2})})

    def test_reduce_returns_input_object_when_nothing_subsumed(self):
        vocab = Vocabulary.standard(3)
        base = _cs(vocab, "A1 | A2", "~A2 | A3")
        inc = IncrementalClosure(base)
        assert inc.reduce() is base

    def test_track_lru_eviction(self):
        vocab = Vocabulary.standard(6)
        base = _cs(vocab, "A1 | A2")
        inc = IncrementalClosure(base)
        old_cap = incremental._TRACK_CAP
        incremental._TRACK_CAP = 2
        try:
            inc.rclosure((0,))
            inc.rclosure((1,))
            inc.rclosure((2,))
            assert len(inc.track_keys) == 2
            assert frozenset({0}) not in inc.track_keys
        finally:
            incremental._TRACK_CAP = old_cap


class TestBudgets:
    def _exploding(self, vocab):
        # Pairwise chains whose total closure far exceeds tiny budgets.
        return _cs(
            vocab,
            "A1 | A2",
            "~A1 | A3",
            "~A2 | A4",
            "~A3 | A5",
            "~A4 | A5",
            "~A5 | A1",
        )

    def test_budget_raise_matches_scratch(self):
        vocab = Vocabulary.standard(5)
        cs = self._exploding(vocab)
        for budget in (1, 3, 10, 100_000):
            inc = IncrementalClosure(cs)
            try:
                scratch = resolution_closure(cs, max_clauses=budget)
            except ClosureBudgetError:
                with pytest.raises(ClosureBudgetError):
                    inc.resolution_closure(max_clauses=budget)
            else:
                assert inc.resolution_closure(max_clauses=budget) == scratch

    def test_mid_delta_overflow_evicts_track_and_marks_stale(self):
        vocab = Vocabulary.standard(5)
        base = _cs(vocab, "A1 | A2")
        inc = IncrementalClosure(base)
        inc.resolution_closure(max_clauses=3)
        grown = self._exploding(vocab)
        inc.advance(grown)  # overflows the budget-3 track mid-replay
        assert inc.stale
        assert None not in inc.track_keys
        # The next query rebuilds from scratch with parity.
        with pytest.raises(ClosureBudgetError):
            inc.resolution_closure(max_clauses=3)
        assert inc.resolution_closure(max_clauses=100_000) == (
            resolution_closure(grown)
        )

    def test_budget_error_leaves_memo_cache_unpolluted_and_rebuilds(self):
        # Satellite: a ClosureBudgetError mid-delta must not write the
        # memo-cache, and the stale lineage must rebuild from scratch.
        # The delta (two clauses) is within the adoption cap, so the
        # second query replays into the budget-3 track and overflows it
        # mid-delta rather than building a fresh lineage.
        vocab = Vocabulary.standard(5)
        base = _cs(vocab, "A1 | A2", "~A2 | A3")
        grown = base.with_clause(frozenset({-3, 4})).with_clause(
            frozenset({-4, 5})
        )
        cache.enable_cache()
        incremental.enable_incremental()
        assert resolution_closure(base, max_clauses=3) is not None
        with pytest.raises(ClosureBudgetError):
            resolution_closure(grown, max_clauses=3)
        key = (grown.vocabulary, grown.fingerprint, 3)
        assert cache.peek("logic.resolution_closure", key) is cache.MISS
        assert incremental.incremental_stats()["stale"] >= 1
        # Recovery: the same lineage serves the larger budget from a
        # scratch rebuild, bit-identical to the scratch kernel.
        routed = resolution_closure(grown, max_clauses=100_000)
        incremental.disable_incremental()
        cache.disable_cache()
        assert routed == resolution_closure(grown)

    def test_larger_budget_query_lifts_track_budget(self):
        vocab = Vocabulary.standard(5)
        cs = self._exploding(vocab)
        inc = IncrementalClosure(cs)
        with pytest.raises(ClosureBudgetError):
            inc.resolution_closure(max_clauses=2)
        # A later, larger-budget query must not be poisoned by the small
        # budget of the first attempt.
        assert inc.resolution_closure(max_clauses=100_000) == (
            resolution_closure(cs)
        )


class TestRoutingAndLineages:
    def test_disabled_routes_return_none(self):
        vocab = Vocabulary.standard(3)
        cs = _cs(vocab, "A1 | A2")
        assert incremental.route_reduce(cs) is None
        assert incremental.route_rclosure(cs, frozenset({0})) is None
        assert incremental.route_resolution_closure(cs, 100) is None
        assert incremental.route_prime_implicates(cs, 100) is None
        assert incremental.touch(cs) is None

    def test_enable_installs_and_removes_reduce_hook(self):
        from repro.logic import clauses as clauses_mod

        assert clauses_mod._INCREMENTAL_REDUCE is None
        incremental.enable_incremental()
        assert clauses_mod._INCREMENTAL_REDUCE is incremental.route_reduce
        assert incremental.incremental_enabled()
        incremental.disable_incremental()
        assert clauses_mod._INCREMENTAL_REDUCE is None
        assert not incremental.incremental_enabled()

    def test_touch_adopts_nearby_lineage(self):
        vocab = Vocabulary.standard(6)
        incremental.enable_incremental()
        base = _cs(vocab, "A1 | A2", "~A2 | A3", "A4 | A5")
        first = incremental.touch(base)
        assert first is not None
        second = incremental.touch(base.with_clause(frozenset({-5, 6})))
        assert second is first  # one-clause delta: adopted, not rebuilt
        assert incremental.incremental_stats()["lineages"] == 1

    def test_vocabulary_change_starts_fresh_lineage(self):
        incremental.enable_incremental()
        a = incremental.touch(_cs(Vocabulary.standard(3), "A1 | A2"))
        b = incremental.touch(_cs(Vocabulary.standard(4), "A1 | A2"))
        assert a is not b
        assert incremental.incremental_stats()["lineages"] == 2

    def test_far_delta_starts_fresh_lineage(self):
        vocab = Vocabulary.standard(30)
        incremental.enable_incremental()
        first = incremental.touch(
            ClauseSet(vocab, [frozenset({i + 1}) for i in range(12)])
        )
        second = incremental.touch(
            ClauseSet(vocab, [frozenset({-(i + 1)}) for i in range(12)])
        )
        assert second is not first

    def test_lineage_lru_cap(self):
        incremental.enable_incremental(lineages=2)
        try:
            for size in (3, 13, 23):
                incremental.touch(_cs(Vocabulary.standard(size), "A1 | A2"))
            assert incremental.incremental_stats()["lineages"] == 2
        finally:
            incremental._LINEAGE_CAP = incremental.DEFAULT_LINEAGES

    def test_routed_kernels_match_scratch(self):
        vocab = Vocabulary.standard(4)
        cs = _cs(vocab, "A1 | A2", "~A2 | A3", "~A1 | A4")
        scratch = (
            resolution_closure(cs),
            prime_implicates(cs),
            rclosure(cs, (1,)),
            cs.reduce(),
        )
        incremental.enable_incremental()
        routed = (
            resolution_closure(cs),
            prime_implicates(cs),
            rclosure(cs, (1,)),
            cs.reduce(),
        )
        assert routed == scratch

    def test_enable_rejects_bad_caps(self):
        with pytest.raises(ValueError):
            incremental.enable_incremental(lineages=0)
        with pytest.raises(ValueError):
            incremental.enable_incremental(tracks=0)


class TestCacheValidation:
    def test_routed_result_validates_against_cached_scratch(self):
        vocab = Vocabulary.standard(4)
        cs = _cs(vocab, "A1 | A2", "~A2 | A3")
        cache.enable_cache()
        obs.enable()
        scratch = resolution_closure(cs)  # fills the memo-cache
        incremental.enable_incremental()
        assert resolution_closure(cs) == scratch
        counts = obs.counters().snapshot()
        assert counts.get("logic.incremental.validations") == 1
        assert "logic.incremental.validation_failures" not in counts

    def test_validation_failure_prefers_cached_and_drops_lineage(self):
        vocab = Vocabulary.standard(4)
        cs = _cs(vocab, "A1 | A2", "~A2 | A3")
        poisoned = _cs(vocab, "A3")
        cache.enable_cache()
        obs.enable()
        key = (cs.vocabulary, cs.fingerprint, 100_000)
        cache.store("logic.resolution_closure", key, poisoned)
        incremental.enable_incremental()
        assert resolution_closure(cs) == poisoned  # cached value wins
        counts = obs.counters().snapshot()
        assert counts.get("logic.incremental.validation_failures") == 1
        assert incremental.incremental_stats()["lineages"] == 0

    def test_routed_result_is_stored_on_cache_miss(self):
        vocab = Vocabulary.standard(4)
        cs = _cs(vocab, "A1 | A2", "~A2 | A3")
        cache.enable_cache()
        incremental.enable_incremental()
        routed = resolution_closure(cs)
        key = (cs.vocabulary, cs.fingerprint, 100_000)
        assert cache.peek("logic.resolution_closure", key) == routed

    def test_peek_does_not_count_or_reorder(self):
        cache.enable_cache()
        cache.store("k", "key", "value")
        before = cache.cache_stats().get("k", {})
        assert cache.peek("k", "key") == "value"
        assert cache.peek("k", "other") is cache.MISS
        assert cache.cache_stats().get("k", {}) == before


class TestObservability:
    def test_delta_counters_and_frontier_histogram(self):
        vocab = Vocabulary.standard(4)
        obs.enable()
        inc = IncrementalClosure(_cs(vocab, "A1 | A2", "~A2 | A3"))
        inc.resolution_closure()
        inc.insert_clause(frozenset({-3, 4}))
        inc.delete_clause(frozenset({-3, 4}))
        counts = obs.counters().snapshot()
        assert counts.get("logic.incremental.inserts") == 1
        assert counts.get("logic.incremental.deletes") == 1
        assert counts.get("logic.incremental.retractions", 0) >= 1
        assert obs.counters().histogram(
            "logic.incremental.frontier_size"
        ) is not None

    def test_provenance_recorded_for_incremental_resolvents(self):
        vocab = Vocabulary.standard(3)
        incremental.enable_incremental()
        with provenance.recording() as rec:
            cs = _cs(vocab, "A1 | A2", "~A2 | A3")
            closed = resolution_closure(cs)
            resolvent = frozenset({1, 3})
            assert resolvent in closed.clauses
            derivation = rec.derivation(resolvent)
        assert derivation is not None
        assert provenance.verify_derivation(derivation, target=resolvent) == []


class TestStatsSurface:
    def test_incremental_stats_shape(self):
        stats = incremental.incremental_stats()
        assert stats == {"lineages": 0, "tracks": 0, "stale": 0}
        incremental.enable_incremental()
        incremental.touch(_cs(Vocabulary.standard(3), "A1 | A2")).reduce()
        stats = incremental.incremental_stats()
        assert stats["lineages"] == 1
        assert stats["tracks"] == 1
