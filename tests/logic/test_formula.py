"""Tests for the formula AST (repro.logic.formula)."""

import pytest

from repro.logic.formula import (
    FALSE,
    TRUE,
    And,
    Const,
    Iff,
    Implies,
    Not,
    Or,
    Var,
    conj,
    disj,
    props_of,
    var,
)


class TestConstruction:
    def test_operator_sugar(self):
        f = var("A") & ~var("B") | var("C")
        assert f == Or((And((Var("A"), Not(Var("B")))), Var("C")))

    def test_implies_and_iff_builders(self):
        assert var("A").implies(var("B")) == Implies(Var("A"), Var("B"))
        assert var("A").iff(var("B")) == Iff(Var("A"), Var("B"))

    def test_conj_disj_flatten_helpers(self):
        assert conj([var("A")]) == var("A")
        assert disj([var("A")]) == var("A")
        assert conj([]) == And(())
        assert disj([]) == Or(())

    def test_nary_rejects_non_formula(self):
        with pytest.raises(TypeError):
            And((var("A"), "B"))  # type: ignore[arg-type]

    def test_immutability(self):
        with pytest.raises(AttributeError):
            var("A").name = "B"  # type: ignore[misc]
        with pytest.raises(AttributeError):
            TRUE.value = False  # type: ignore[misc]


class TestEquality:
    def test_structural_equality(self):
        assert var("A") & var("B") == var("A") & var("B")
        assert var("A") & var("B") != var("B") & var("A")  # order matters syntactically

    def test_and_or_not_conflated(self):
        assert And((var("A"),)) != Or((var("A"),))

    def test_hash_consistency(self):
        assert hash(var("A") | var("B")) == hash(var("A") | var("B"))

    def test_constants_distinct(self):
        assert TRUE != FALSE
        assert Const(True) == TRUE


class TestEvaluation:
    def test_all_connectives(self):
        env = {"A": True, "B": False}
        assert (var("A") & var("B")).evaluate(env) is False
        assert (var("A") | var("B")).evaluate(env) is True
        assert (~var("B")).evaluate(env) is True
        assert var("A").implies(var("B")).evaluate(env) is False
        assert var("B").implies(var("A")).evaluate(env) is True
        assert var("A").iff(var("B")).evaluate(env) is False
        assert var("A").iff(var("A")).evaluate(env) is True

    def test_constants_ignore_environment(self):
        assert TRUE.evaluate({}) is True
        assert FALSE.evaluate({}) is False

    def test_empty_nary_identities(self):
        assert And(()).evaluate({}) is True
        assert Or(()).evaluate({}) is False

    def test_callable_assignment(self):
        f = var("A") & ~var("B")
        assert f.evaluate(lambda name: name == "A") is True

    def test_truth_table_implies(self):
        for a in (False, True):
            for b in (False, True):
                expected = (not a) or b
                got = var("A").implies(var("B")).evaluate({"A": a, "B": b})
                assert got == expected


class TestProps:
    def test_props_collects_all_letters(self):
        f = (var("A") & ~var("B")).implies(var("C").iff(var("A")))
        assert f.props() == frozenset({"A", "B", "C"})

    def test_props_of_collection(self):
        assert props_of([var("A"), ~var("B")]) == frozenset({"A", "B"})

    def test_constants_have_no_props(self):
        assert TRUE.props() == frozenset()


class TestSubstitution:
    def test_simple_replacement(self):
        f = var("A") | var("B")
        assert f.substitute({"A": TRUE}) == Or((TRUE, Var("B")))

    def test_unmapped_variables_untouched(self):
        f = var("A") & var("B")
        assert f.substitute({}) == f

    def test_substitution_is_simultaneous_not_iterated(self):
        # A -> B while B -> A must swap, not collapse.
        f = var("A") & var("B")
        swapped = f.substitute({"A": var("B"), "B": var("A")})
        assert swapped == var("B") & var("A")

    def test_substitute_into_all_node_types(self):
        f = Iff(Implies(var("A"), ~var("A")), var("A"))
        g = f.substitute({"A": var("X")})
        assert g.props() == frozenset({"X"})

    def test_morphism_composition_via_substitution(self):
        # (g o f)(A) = f-bar(g(A)): substitution composes as Definition 1.3.1.
        g_of_a = var("B") & var("C")
        f_map = {"B": ~var("A"), "C": var("A")}
        composed = g_of_a.substitute(f_map)
        assert composed == ~var("A") & var("A")


class TestRendering:
    def test_str_round_trippable_through_parser(self):
        from repro.logic.parser import parse_formula

        samples = [
            var("A1") & ~var("A2"),
            (var("A1") | var("A2")).implies(var("A3")),
            var("A1").iff(~(var("A2") & var("A3"))),
            TRUE,
            FALSE,
        ]
        for f in samples:
            assert parse_formula(str(f)) == f

    def test_repr_contains_str(self):
        assert "A1" in repr(var("A1"))
