"""Property-based tests (hypothesis) for the logic substrate.

Strategies generate random formulas and clause sets over a fixed small
vocabulary; properties assert the semantic invariants everything downstream
relies on: CNF preserves models, resolution steps are entailed, variable
elimination computes exactly the existential projection, dependency sets
are semantic.
"""

from hypothesis import given, settings, strategies as st

from repro.logic.clauses import ClauseSet, clause_is_tautologous, make_literal
from repro.logic.cnf import clauses_to_formula, formula_to_clauses
from repro.logic.formula import And, Iff, Implies, Not, Or, Var
from repro.logic.propositions import Vocabulary
from repro.logic.resolution import eliminate_letter, rclosure, resolvent
from repro.logic.sat import entails_clause, is_satisfiable
from repro.logic.semantics import (
    clause_set_dependency_indices,
    models_of_clauses,
    models_of_formulas,
)
from repro.logic.structures import flip_bit, saturate_on

VOCAB = Vocabulary.standard(4)
N = len(VOCAB)

# --- strategies -----------------------------------------------------------

variables = st.sampled_from([Var(name) for name in VOCAB.names])


def formulas(depth: int = 3):
    return st.recursive(
        variables,
        lambda children: st.one_of(
            children.map(Not),
            st.tuples(children, children).map(lambda p: And(p)),
            st.tuples(children, children).map(lambda p: Or(p)),
            st.tuples(children, children).map(lambda p: Implies(*p)),
            st.tuples(children, children).map(lambda p: Iff(*p)),
        ),
        max_leaves=8,
    )


literals = st.integers(min_value=1, max_value=N).flatmap(
    lambda i: st.sampled_from([i, -i])
)
clauses = st.frozensets(literals, min_size=1, max_size=3)
clause_sets = st.frozensets(clauses, max_size=5).map(lambda cs: ClauseSet(VOCAB, cs))


# --- properties -----------------------------------------------------------

@given(formulas())
@settings(max_examples=120, deadline=None)
def test_cnf_preserves_models(formula):
    expected = models_of_formulas(VOCAB, [formula])
    assert models_of_clauses(formula_to_clauses(formula, VOCAB)) == expected


@given(clause_sets)
@settings(max_examples=120, deadline=None)
def test_clause_formula_roundtrip(clause_set):
    back = formula_to_clauses(clauses_to_formula(clause_set), VOCAB)
    assert models_of_clauses(back) == models_of_clauses(clause_set)


@given(clause_sets)
@settings(max_examples=120, deadline=None)
def test_dpll_agrees_with_enumeration(clause_set):
    assert is_satisfiable(clause_set) == bool(models_of_clauses(clause_set))


@given(clause_sets, clauses)
@settings(max_examples=120, deadline=None)
def test_entailment_agrees_with_enumeration(clause_set, clause):
    if clause_is_tautologous(clause):
        return
    models = models_of_clauses(clause_set)
    expected = all(
        any(
            ((world >> (abs(lit) - 1)) & 1) == (1 if lit > 0 else 0)
            for lit in clause
        )
        for world in models
    )
    assert entails_clause(clause_set, clause) == expected


@given(clause_sets, st.integers(min_value=0, max_value=N - 1))
@settings(max_examples=120, deadline=None)
def test_eliminate_letter_is_existential_projection(clause_set, index):
    projected = eliminate_letter(clause_set, index)
    assert models_of_clauses(projected) == saturate_on(
        models_of_clauses(clause_set), {index}
    )
    assert index not in projected.prop_indices


@given(clause_sets, st.sets(st.integers(min_value=0, max_value=N - 1), max_size=3))
@settings(max_examples=80, deadline=None)
def test_rclosure_preserves_models(clause_set, indices):
    assert models_of_clauses(rclosure(clause_set, indices)) == models_of_clauses(
        clause_set
    )


@given(clauses, clauses, st.integers(min_value=0, max_value=N - 1))
@settings(max_examples=150, deadline=None)
def test_resolvent_is_entailed(left, right, index):
    positive = make_literal(index)
    if clause_is_tautologous(left) or clause_is_tautologous(right):
        return
    if positive not in left or -positive not in right:
        return
    res = resolvent(left, right, index)
    if res is None:
        return
    premises = ClauseSet(VOCAB, [left, right])
    assert entails_clause(premises, res)


@given(clause_sets)
@settings(max_examples=100, deadline=None)
def test_dependency_set_is_exact(clause_set):
    models = models_of_clauses(clause_set)
    dep = clause_set_dependency_indices(clause_set)
    # Closed under flipping every non-dependent letter...
    for index in set(range(N)) - dep:
        assert all(flip_bit(world, index) in models for world in models)
    # ...and witnesses exist for every dependent letter.
    for index in dep:
        assert any(flip_bit(world, index) not in models for world in models)
