"""Tests for the DPLL solver (repro.logic.sat)."""

import random

from repro.logic.clauses import ClauseSet, clause_of, make_literal
from repro.logic.propositions import Vocabulary
from repro.logic.sat import (
    count_models,
    entails_clause,
    entails_clauses,
    is_satisfiable,
    solve,
)
from repro.logic.semantics import models_of_clauses

VOCAB = Vocabulary.standard(6)


class TestSolve:
    def test_satisfiable_returns_model(self):
        cs = ClauseSet.from_strs(VOCAB, ["A1 | A2", "~A1 | A3"])
        model = solve(cs)
        assert model is not None
        # Complete the partial model arbitrarily and check it.
        world = 0
        for index, value in model.items():
            if value:
                world |= 1 << index
        assert cs.satisfied_by(world)

    def test_unsatisfiable_returns_none(self):
        cs = ClauseSet.from_strs(VOCAB, ["A1", "~A1"])
        assert solve(cs) is None

    def test_empty_clause_set_trivially_sat(self):
        assert solve(ClauseSet.tautology(VOCAB)) == {}

    def test_empty_clause_unsat(self):
        assert solve(ClauseSet.contradiction(VOCAB)) is None

    def test_assumptions_respected(self):
        cs = ClauseSet.from_strs(VOCAB, ["A1 | A2"])
        model = solve(cs, assumptions=(make_literal(0, False),))
        assert model is not None and model[0] is False and model[1] is True

    def test_conflicting_assumptions(self):
        cs = ClauseSet.tautology(VOCAB)
        assert solve(cs, assumptions=(1, -1)) is None


class TestAgreementWithEnumeration:
    def test_random_3cnf_agrees_with_model_enumeration(self):
        rng = random.Random(42)
        for _ in range(40):
            clauses = []
            for _ in range(rng.randint(1, 10)):
                letters = rng.sample(range(6), 3)
                clauses.append(
                    clause_of(
                        make_literal(i, rng.random() < 0.5) for i in letters
                    )
                )
            cs = ClauseSet(VOCAB, clauses)
            assert is_satisfiable(cs) == bool(models_of_clauses(cs))


class TestEntailment:
    def test_unit_propagation_chain(self):
        cs = ClauseSet.from_strs(VOCAB, ["A1", "~A1 | A2", "~A2 | A3"])
        assert entails_clause(cs, clause_of([make_literal(2)]))

    def test_resolution_entailment(self):
        cs = ClauseSet.from_strs(VOCAB, ["A1 | A2", "~A1 | A3"])
        assert entails_clause(cs, clause_of([make_literal(1), make_literal(2)]))

    def test_non_entailment(self):
        cs = ClauseSet.from_strs(VOCAB, ["A1 | A2"])
        assert not entails_clause(cs, clause_of([make_literal(0)]))

    def test_entails_clauses_all_or_nothing(self):
        cs = ClauseSet.from_strs(VOCAB, ["A1", "A2"])
        good = ClauseSet.from_strs(VOCAB, ["A1 | A3", "A2"])
        bad = ClauseSet.from_strs(VOCAB, ["A3"])
        assert entails_clauses(cs, good)
        assert not entails_clauses(cs, bad)

    def test_inconsistent_theory_entails_everything(self):
        cs = ClauseSet.contradiction(VOCAB)
        assert entails_clause(cs, clause_of([make_literal(4)]))


class TestCountModels:
    def test_full_count(self):
        cs = ClauseSet.from_strs(VOCAB, ["A1"])
        assert count_models(cs) == 2 ** 5

    def test_projected_count(self):
        cs = ClauseSet.from_strs(VOCAB, ["A1 | A2"])
        assert count_models(cs, over_indices=frozenset({0, 1})) == 3

    def test_scales_past_enumeration_limit_not_required(self):
        # count_models is documented as enumerative; just check tautology.
        assert count_models(ClauseSet.tautology(VOCAB)) == 64


class TestSolverProperties:
    """Randomized cross-check of the solver against brute-force enumeration.

    Guards the pure-literal/mixed-polarity tracking (the seed carried a
    duplicated, partly dead polarity-initialisation branch there): on
    instances of up to 12 letters -- wide enough for every interaction of
    unit propagation, pure-literal cascades, and backtracking -- the
    verdicts of ``solve``/``is_satisfiable`` must match the brute-force
    model count, and any model returned must actually satisfy the set.
    """

    def test_solve_agrees_with_brute_force_on_random_instances(self):
        rng = random.Random(20260805)
        for case in range(250):
            letters = rng.randint(1, 12)
            vocab = Vocabulary.standard(letters)
            clauses = []
            for _ in range(rng.randint(1, 3 * letters)):
                width = rng.randint(1, min(4, letters))
                chosen = rng.sample(range(letters), width)
                clauses.append(
                    clause_of(make_literal(i, rng.random() < 0.5) for i in chosen)
                )
            cs = ClauseSet(vocab, clauses)
            brute_force_count = count_models(cs)
            model = solve(cs)
            assert is_satisfiable(cs) == (model is not None), f"case {case}: {cs}"
            assert (model is not None) == (brute_force_count > 0), f"case {case}: {cs}"
            if model is not None:
                world = 0
                for index, value in model.items():
                    if value:
                        world |= 1 << index
                assert cs.satisfied_by(world), f"case {case}: {cs} model {model}"

    def test_pure_literal_cascade_instances(self):
        # Single-polarity chains exercise exactly the pure-literal path.
        vocab = Vocabulary.standard(6)
        cs = ClauseSet.from_strs(
            vocab, ["~A1 | A2", "~A2 | A3", "~A3 | A4", "~A4 | A5", "~A5 | A6"]
        )
        model = solve(cs)
        assert model is not None
        world = sum(1 << i for i, v in model.items() if v)
        assert cs.satisfied_by(world)
