"""Tests for the formula parser (repro.logic.parser)."""

import pytest

from repro.errors import ParseError
from repro.logic.formula import FALSE, TRUE, And, Iff, Implies, Not, Or, Var, var
from repro.logic.parser import parse_formula, parse_formulas


class TestAtoms:
    def test_variable(self):
        assert parse_formula("A1") == Var("A1")

    def test_constants(self):
        assert parse_formula("1") == TRUE
        assert parse_formula("0") == FALSE
        assert parse_formula("true") == TRUE
        assert parse_formula("false") == FALSE

    def test_dotted_and_primed_names(self):
        assert parse_formula("R.Jones.T1") == Var("R.Jones.T1")
        assert parse_formula("s1.0'") == Var("s1.0'")


class TestOperators:
    def test_negation(self):
        assert parse_formula("~A") == Not(Var("A"))
        assert parse_formula("!A") == Not(Var("A"))
        assert parse_formula("~~A") == Not(Not(Var("A")))

    def test_conjunction_flattens(self):
        assert parse_formula("A & B & C") == And((Var("A"), Var("B"), Var("C")))

    def test_disjunction_flattens(self):
        assert parse_formula("A | B | C") == Or((Var("A"), Var("B"), Var("C")))

    def test_alternative_spellings(self):
        assert parse_formula(r"A /\ B") == parse_formula("A & B")
        assert parse_formula(r"A \/ B") == parse_formula("A | B")
        assert parse_formula("A => B") == parse_formula("A -> B")
        assert parse_formula("A <=> B") == parse_formula("A <-> B")


class TestPrecedence:
    def test_not_binds_tighter_than_and(self):
        assert parse_formula("~A & B") == And((Not(Var("A")), Var("B")))

    def test_and_binds_tighter_than_or(self):
        assert parse_formula("A | B & C") == Or((Var("A"), And((Var("B"), Var("C")))))

    def test_or_binds_tighter_than_implies(self):
        f = parse_formula("A | B -> C")
        assert f == Implies(Or((Var("A"), Var("B"))), Var("C"))

    def test_implies_binds_tighter_than_iff(self):
        f = parse_formula("A -> B <-> C")
        assert f == Iff(Implies(Var("A"), Var("B")), Var("C"))

    def test_implies_right_associative(self):
        f = parse_formula("A -> B -> C")
        assert f == Implies(Var("A"), Implies(Var("B"), Var("C")))

    def test_iff_left_associative(self):
        f = parse_formula("A <-> B <-> C")
        assert f == Iff(Iff(Var("A"), Var("B")), Var("C"))

    def test_parentheses_override(self):
        f = parse_formula("(A | B) & C")
        assert f == And((Or((Var("A"), Var("B"))), Var("C")))


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        ["", "   ", "A &", "& A", "(A", "A)", "A B", "A ~ B", "->", "A -> -> B"],
    )
    def test_malformed_inputs_raise(self, text):
        with pytest.raises(ParseError):
            parse_formula(text)

    def test_unknown_character_reports_position(self):
        with pytest.raises(ParseError) as excinfo:
            parse_formula("A1 $ A2")
        assert excinfo.value.position == 3

    def test_trailing_input_rejected(self):
        with pytest.raises(ParseError, match="trailing"):
            parse_formula("A1 A2")


class TestBatch:
    def test_parse_formulas_preserves_order(self):
        fs = parse_formulas(["A", "~B", "A -> B"])
        assert fs == (var("A"), ~var("B"), var("A").implies(var("B")))


class TestSemanticSanity:
    """Parsing then evaluating must agree with hand truth tables."""

    @pytest.mark.parametrize(
        "text,env,expected",
        [
            ("~A1 | A2 -> A3", {"A1": True, "A2": False, "A3": False}, True),
            ("~A1 | A2 -> A3", {"A1": False, "A2": False, "A3": False}, False),
            ("A <-> ~A", {"A": True}, False),
            ("(A -> B) & (B -> A)", {"A": True, "B": True}, True),
            ("1 -> A", {"A": False}, False),
            ("0 -> A", {"A": False}, True),
        ],
    )
    def test_eval_after_parse(self, text, env, expected):
        assert parse_formula(text).evaluate(env) is expected
