"""Tests for model-theoretic notions (repro.logic.semantics)."""

from repro.logic.clauses import ClauseSet
from repro.logic.cnf import formula_to_clauses
from repro.logic.parser import parse_formula, parse_formulas
from repro.logic.propositions import Vocabulary
from repro.logic.semantics import (
    clause_set_dependency_indices,
    clause_sets_equivalent,
    dependency_indices,
    dependency_names,
    formulas_entail,
    models_of_clauses,
    models_of_formulas,
    sat_literals,
    theory_contains,
)
from repro.logic.structures import all_worlds

VOCAB = Vocabulary.standard(4)


class TestMod:
    def test_tautology_has_all_models(self):
        assert models_of_formulas(VOCAB, [parse_formula("A1 | ~A1")]) == frozenset(
            all_worlds(VOCAB)
        )

    def test_contradiction_has_no_models(self):
        assert models_of_formulas(VOCAB, [parse_formula("A1 & ~A1")]) == frozenset()

    def test_empty_premise_set_has_all_models(self):
        assert len(models_of_formulas(VOCAB, [])) == 16

    def test_mod_of_conjunction_is_intersection(self):
        f1, f2 = parse_formulas(["A1 | A2", "~A2 | A3"])
        both = models_of_formulas(VOCAB, [f1, f2])
        assert both == models_of_formulas(VOCAB, [f1]) & models_of_formulas(VOCAB, [f2])

    def test_mod_agrees_between_formula_and_clause_routes(self):
        f = parse_formula("(A1 -> A2) & (A3 | A4)")
        assert models_of_formulas(VOCAB, [f]) == models_of_clauses(
            formula_to_clauses(f, VOCAB)
        )


class TestSatLiterals:
    def test_forced_literals_reported(self):
        cs = ClauseSet.from_strs(VOCAB, ["A1", "~A2"])
        lits = sat_literals(VOCAB, models_of_clauses(cs))
        assert "A1" in lits and "~A2" in lits
        assert "A3" not in lits and "~A3" not in lits

    def test_empty_world_set_reports_everything(self):
        lits = sat_literals(VOCAB, frozenset())
        assert "A1" in lits and "~A1" in lits


class TestEntailment:
    def test_modus_ponens(self):
        premises = parse_formulas(["A1", "A1 -> A2"])
        assert formulas_entail(VOCAB, premises, [parse_formula("A2")])

    def test_non_entailment(self):
        assert not formulas_entail(
            VOCAB, [parse_formula("A1 | A2")], [parse_formula("A1")]
        )

    def test_theory_contains_matches_entailment(self):
        axioms = parse_formulas(["A1 -> A2", "A2 -> A3"])
        assert theory_contains(VOCAB, axioms, parse_formula("A1 -> A3"))
        assert not theory_contains(VOCAB, axioms, parse_formula("A3 -> A1"))

    def test_inconsistent_premises_entail_anything(self):
        premises = parse_formulas(["A1", "~A1"])
        assert formulas_entail(VOCAB, premises, [parse_formula("A4")])


class TestEquivalence:
    def test_syntactically_different_equivalent_sets(self):
        left = formula_to_clauses(parse_formula("A1 -> A2"), VOCAB)
        right = formula_to_clauses(parse_formula("~A2 -> ~A1"), VOCAB)
        assert clause_sets_equivalent(left, right)

    def test_inequivalence_detected(self):
        left = ClauseSet.from_strs(VOCAB, ["A1"])
        right = ClauseSet.from_strs(VOCAB, ["A2"])
        assert not clause_sets_equivalent(left, right)


class TestDependency:
    """Dep[S] -- the semantic heart of genmask (Definitions 1.1, 2.2.2(v))."""

    def test_paper_example_dependency(self):
        # Example 3.1.5: genmask {A1 | A2} = {A1, A2}.
        vocab = Vocabulary.standard(5)
        cs = ClauseSet.from_strs(vocab, ["A1 | A2"])
        assert dependency_names(vocab, models_of_clauses(cs)) == frozenset({"A1", "A2"})

    def test_tautology_depends_on_nothing(self):
        assert dependency_indices(VOCAB, frozenset(all_worlds(VOCAB))) == frozenset()

    def test_empty_set_depends_on_nothing(self):
        assert dependency_indices(VOCAB, frozenset()) == frozenset()

    def test_single_world_depends_on_everything(self):
        assert dependency_indices(VOCAB, frozenset({0b0101})) == frozenset({0, 1, 2, 3})

    def test_semantic_not_syntactic(self):
        # (A1 | A2) & (A1 | ~A2) mentions A2 but depends only on A1.
        cs = formula_to_clauses(parse_formula("(A1 | A2) & (A1 | ~A2)"), VOCAB)
        assert clause_set_dependency_indices(cs) == frozenset({0})

    def test_dependency_invariant_under_equivalence(self):
        left = formula_to_clauses(parse_formula("A1 -> A2"), VOCAB)
        right = formula_to_clauses(parse_formula("~A2 -> ~A1"), VOCAB)
        assert clause_set_dependency_indices(left) == clause_set_dependency_indices(right)

    def test_xor_depends_on_both(self):
        cs = formula_to_clauses(parse_formula("~(A1 <-> A2)"), VOCAB)
        assert clause_set_dependency_indices(cs) == frozenset({0, 1})
