"""Tests for exact model counting (repro.logic.sat.count_models_exact)."""

import random

from hypothesis import given, settings, strategies as st

from repro.logic.clauses import ClauseSet, clause_of, make_literal
from repro.logic.propositions import Vocabulary
from repro.logic.sat import count_models_exact
from repro.logic.semantics import models_of_clauses

VOCAB = Vocabulary.standard(5)


def cs(*texts):
    return ClauseSet.from_strs(VOCAB, texts)


class TestCountModelsExact:
    def test_tautology_counts_all_worlds(self):
        assert count_models_exact(ClauseSet.tautology(VOCAB)) == 32

    def test_contradiction_counts_zero(self):
        assert count_models_exact(ClauseSet.contradiction(VOCAB)) == 0
        assert count_models_exact(cs("A1", "~A1")) == 0

    def test_single_unit(self):
        assert count_models_exact(cs("A1")) == 16

    def test_disjunction(self):
        assert count_models_exact(cs("A1 | A2")) == 3 * 8

    def test_implication_chain(self):
        # A1, A1->A2, A2->A3: forces three letters, frees two.
        assert count_models_exact(cs("A1", "~A1 | A2", "~A2 | A3")) == 4

    def test_agrees_with_enumeration_randomly(self):
        rng = random.Random(77)
        for _ in range(30):
            clauses = [
                clause_of(
                    make_literal(i, rng.random() < 0.5)
                    for i in rng.sample(range(5), rng.randint(1, 3))
                )
                for _ in range(rng.randint(0, 7))
            ]
            state = ClauseSet(VOCAB, clauses)
            assert count_models_exact(state) == len(models_of_clauses(state))

    def test_scales_past_enumeration_limit(self):
        big = Vocabulary.standard(60)
        chain = ClauseSet.from_strs(
            big, [f"~A{i} | A{i + 1}" for i in range(1, 60)]
        )
        # Models of an implication chain over n letters: n+1 (the cut point).
        assert count_models_exact(chain) == 61


clauses_strategy = st.frozensets(
    st.frozensets(
        st.integers(min_value=1, max_value=5).flatmap(
            lambda i: st.sampled_from([i, -i])
        ),
        min_size=1,
        max_size=3,
    ),
    max_size=6,
)


@given(clauses_strategy)
@settings(max_examples=120, deadline=None)
def test_count_matches_enumeration_property(clauses):
    state = ClauseSet(VOCAB, clauses)
    assert count_models_exact(state) == len(models_of_clauses(state))


class TestSessionWorldCount:
    def test_counts_agree_across_backends(self):
        from repro.hlu.session import IncompleteDatabase

        clausal = IncompleteDatabase.over(4).assert_("A1 | A2").insert("A3")
        instance = clausal.with_backend("instance")
        assert clausal.world_count() == instance.world_count() == len(
            instance.worlds()
        )

    def test_count_on_large_vocabulary(self):
        from repro.hlu.session import IncompleteDatabase

        db = IncompleteDatabase.over(40)
        db.assert_("A1")
        assert db.world_count() == 1 << 39
