"""Differential tests: indexed clause kernels vs the seed full-scan ones.

The PR that introduced the occurrence-indexed ``rclosure`` /
``unit_resolve`` / ``resolution_closure``, the signature-filtered
``ClauseSet.reduce``, and the iterative DPLL promised *bit-identical
outputs* (same ``ClauseSet`` values, same sat/unsat verdicts, same model
counts).  This module keeps verbatim copies of the seed implementations
(``_reference_*``, obs instrumentation stripped) and checks the shipped
kernels against them on hundreds of randomized clause sets of up to 40
letters.
"""

import random

from repro.logic.clauses import Clause, ClauseSet, make_literal
from repro.logic.propositions import Vocabulary
from repro.logic.resolution import rclosure, resolution_closure, resolvent, unit_resolve
from repro.logic.sat import count_models, count_models_exact, is_satisfiable, solve
from repro.logic.semantics import models_of_clauses


# ---------------------------------------------------------------------------
# reference (seed) implementations, kept verbatim minus obs calls
# ---------------------------------------------------------------------------

def _reference_reduce(clause_set: ClauseSet) -> ClauseSet:
    by_size = sorted(clause_set.clauses, key=len)
    kept: list[Clause] = []
    for clause in by_size:
        if not any(kept_clause <= clause for kept_clause in kept):
            kept.append(clause)
    return ClauseSet(clause_set.vocabulary, kept)


def _reference_rclosure(clause_set: ClauseSet, indices) -> ClauseSet:
    index_list = sorted(set(indices))
    current: set[Clause] = set(clause_set.clauses)
    changed = True
    while changed:
        changed = False
        for index in index_list:
            positive_literal = make_literal(index, positive=True)
            negative_literal = -positive_literal
            with_pos = [c for c in current if positive_literal in c]
            with_neg = [c for c in current if negative_literal in c]
            for clause_pos in with_pos:
                for clause_neg in with_neg:
                    res = resolvent(clause_pos, clause_neg, index)
                    if res is not None and res not in current:
                        current.add(res)
                        changed = True
    return ClauseSet(clause_set.vocabulary, current)


def _reference_unit_resolve(clause_set: ClauseSet, literals) -> ClauseSet:
    literal_list = list(literals)
    clauses: set[Clause] = set(clause_set.clauses)
    for literal in literal_list:
        negated = -literal
        updated: set[Clause] = set()
        for clause in clauses:
            if negated in clause:
                updated.add(clause - {negated})
            else:
                updated.add(clause)
        clauses = updated
    return ClauseSet(clause_set.vocabulary, clauses)


def _reference_resolution_closure(clause_set: ClauseSet, max_clauses: int = 100_000) -> ClauseSet:
    indices = sorted(clause_set.prop_indices)
    current: set[Clause] = set(clause_set.clauses)
    changed = True
    while changed:
        changed = False
        snapshot = list(current)
        for index in indices:
            positive_literal = make_literal(index, positive=True)
            with_pos = [c for c in snapshot if positive_literal in c]
            with_neg = [c for c in snapshot if -positive_literal in c]
            for clause_pos in with_pos:
                for clause_neg in with_neg:
                    res = resolvent(clause_pos, clause_neg, index)
                    if res is not None and res not in current:
                        current.add(res)
                        changed = True
                        if len(current) > max_clauses:
                            raise MemoryError
    return ClauseSet(clause_set.vocabulary, current)


# ---------------------------------------------------------------------------
# randomized workloads
# ---------------------------------------------------------------------------

def _random_clause_set(rng: random.Random, vocab: Vocabulary, clause_count: int, max_width: int) -> ClauseSet:
    n = len(vocab)
    clauses = []
    for _ in range(clause_count):
        width = rng.randint(1, min(max_width, n))
        letters = rng.sample(range(n), width)
        clauses.append(
            frozenset(make_literal(i, rng.random() < 0.5) for i in letters)
        )
    return ClauseSet(vocab, clauses)


class TestReduceDifferential:
    def test_reduce_matches_reference_on_random_sets(self):
        rng = random.Random(1987)
        for case in range(120):
            vocab = Vocabulary.standard(rng.randint(2, 40))
            cs = _random_clause_set(rng, vocab, rng.randint(1, 30), 4)
            assert cs.reduce() == _reference_reduce(cs), f"case {case}: {cs}"

    def test_reduce_with_duplicated_subsuming_units(self):
        vocab = Vocabulary.standard(40)
        clauses = [frozenset({1}), frozenset({1, 2}), frozenset({1, -2, 40}),
                   frozenset({-3, 4}), frozenset({-3, 4, -40})]
        cs = ClauseSet(vocab, clauses)
        assert cs.reduce() == _reference_reduce(cs)
        assert cs.reduce().clauses == frozenset({frozenset({1}), frozenset({-3, 4})})


class TestRclosureDifferential:
    def test_rclosure_matches_reference_on_random_sets(self):
        rng = random.Random(315)
        for case in range(100):
            vocab = Vocabulary.standard(rng.randint(2, 40))
            cs = _random_clause_set(rng, vocab, rng.randint(1, 18), 3)
            pivot_count = rng.randint(1, min(3, len(vocab)))
            pivots = rng.sample(range(len(vocab)), pivot_count)
            assert rclosure(cs, pivots) == _reference_rclosure(cs, pivots), (
                f"case {case}: {cs} on {pivots}"
            )

    def test_rclosure_multi_letter_chains(self):
        # Resolvents of resolvents across several pivot letters.
        rng = random.Random(325)
        vocab = Vocabulary.standard(12)
        for case in range(30):
            cs = _random_clause_set(rng, vocab, rng.randint(4, 14), 2)
            pivots = rng.sample(range(12), 4)
            assert rclosure(cs, pivots) == _reference_rclosure(cs, pivots)


class TestUnitResolveDifferential:
    def test_unit_resolve_matches_reference_on_random_sets(self):
        rng = random.Random(238)
        for case in range(120):
            vocab = Vocabulary.standard(rng.randint(2, 40))
            cs = _random_clause_set(rng, vocab, rng.randint(1, 25), 4)
            k = rng.randint(0, len(vocab))
            literals = [
                make_literal(i, rng.random() < 0.5)
                for i in rng.sample(range(len(vocab)), k)
            ]
            assert unit_resolve(cs, literals) == _reference_unit_resolve(cs, literals), (
                f"case {case}: {cs} striking {literals}"
            )

    def test_unit_resolve_merging_clauses(self):
        # Two clauses collapsing to the same residue must merge, as the
        # seed's set semantics did.
        vocab = Vocabulary.standard(3)
        cs = ClauseSet(vocab, [frozenset({1, -2}), frozenset({1, 3})])
        result = unit_resolve(cs, [2, -3])
        assert result == _reference_unit_resolve(cs, [2, -3])
        assert result.clauses == frozenset({frozenset({1})})


class TestResolutionClosureDifferential:
    def test_total_closure_matches_reference(self):
        rng = random.Random(2346)
        for case in range(40):
            vocab = Vocabulary.standard(rng.randint(2, 9))
            cs = _random_clause_set(rng, vocab, rng.randint(1, 8), 3)
            assert resolution_closure(cs) == _reference_resolution_closure(cs), (
                f"case {case}: {cs}"
            )


class TestSolverDifferential:
    def test_verdicts_and_counts_agree_with_enumeration(self):
        rng = random.Random(4655)
        for case in range(80):
            vocab = Vocabulary.standard(rng.randint(1, 10))
            cs = _random_clause_set(rng, vocab, rng.randint(1, 14), 3)
            models = models_of_clauses(cs)
            assert is_satisfiable(cs) == bool(models), f"case {case}: {cs}"
            assert count_models_exact(cs) == len(models), f"case {case}: {cs}"
            model = solve(cs)
            if models:
                # The (partial) model must extend to a world in Mod[Phi].
                world = 0
                for index, value in model.items():
                    if value:
                        world |= 1 << index
                assert cs.satisfied_by(world), f"case {case}: {cs} model {model}"

    def test_counts_agree_on_larger_vocabulary_via_count_models(self):
        rng = random.Random(5921)
        for _ in range(25):
            vocab = Vocabulary.standard(12)
            cs = _random_clause_set(rng, vocab, rng.randint(1, 20), 3)
            assert count_models_exact(cs) == count_models(cs)
