"""Tests for literals, clauses, and clause sets (repro.logic.clauses)."""

import pytest

from repro.errors import (
    InconsistentLiteralsError,
    ParseError,
    VocabularyError,
    VocabularyMismatchError,
)
from repro.logic.clauses import (
    EMPTY_CLAUSE,
    ClauseSet,
    clause_is_tautologous,
    clause_of,
    clause_props,
    clause_satisfied_by,
    clause_to_str,
    literal_from_str,
    literal_index,
    literal_is_positive,
    literal_to_str,
    literals_consistent,
    literals_to_world_constraint,
    make_literal,
    negate_literal,
)
from repro.logic.propositions import Vocabulary

VOCAB = Vocabulary.standard(5)


class TestLiterals:
    def test_make_and_decompose(self):
        lit = make_literal(3)
        assert literal_index(lit) == 3
        assert literal_is_positive(lit)
        neg = make_literal(3, positive=False)
        assert literal_index(neg) == 3
        assert not literal_is_positive(neg)

    def test_negation_is_involution(self):
        lit = make_literal(2, positive=False)
        assert negate_literal(negate_literal(lit)) == lit

    def test_negative_index_rejected(self):
        with pytest.raises(VocabularyError):
            make_literal(-1)

    def test_str_roundtrip(self):
        for text in ("A1", "~A3", "!A5"):
            lit = literal_from_str(VOCAB, text)
            canonical = literal_to_str(VOCAB, lit)
            assert literal_from_str(VOCAB, canonical) == lit

    def test_double_negation_in_text(self):
        assert literal_from_str(VOCAB, "~~A2") == make_literal(1)

    def test_empty_literal_text_rejected(self):
        with pytest.raises(ParseError):
            literal_from_str(VOCAB, "~")

    def test_consistency_check(self):
        assert literals_consistent([1, 2, -3])
        assert not literals_consistent([1, -1])
        assert literals_consistent([])

    def test_world_constraint_compilation(self):
        care, value = literals_to_world_constraint([make_literal(0), make_literal(2, False)])
        assert care == 0b101
        assert value == 0b001

    def test_world_constraint_rejects_contradiction(self):
        with pytest.raises(InconsistentLiteralsError):
            literals_to_world_constraint([1, -1])

    def test_world_constraint_tolerates_duplicates(self):
        care, value = literals_to_world_constraint([1, 1])
        assert (care, value) == (0b1, 0b1)


class TestClauses:
    def test_clause_props(self):
        clause = clause_of([make_literal(0), make_literal(4, False)])
        assert clause_props(clause) == frozenset({0, 4})

    def test_tautology_detection(self):
        assert clause_is_tautologous(clause_of([1, -1]))
        assert not clause_is_tautologous(clause_of([1, 2]))
        assert not clause_is_tautologous(EMPTY_CLAUSE)

    def test_satisfaction_bit_semantics(self):
        clause = clause_of([make_literal(0), make_literal(1, False)])  # A1 | ~A2
        assert clause_satisfied_by(clause, 0b01)
        assert clause_satisfied_by(clause, 0b00)
        assert not clause_satisfied_by(clause, 0b10)

    def test_empty_clause_unsatisfiable(self):
        for world in range(8):
            assert not clause_satisfied_by(EMPTY_CLAUSE, world)

    def test_clause_str_empty_is_zero(self):
        assert clause_to_str(VOCAB, EMPTY_CLAUSE) == "0"

    def test_clause_str_sorted_by_index(self):
        clause = clause_of([make_literal(3), make_literal(0, False)])
        assert clause_to_str(VOCAB, clause) == "~A1 | A4"


class TestClauseSetConstruction:
    def test_tautologous_clauses_removed(self):
        cs = ClauseSet(VOCAB, [clause_of([1, -1]), clause_of([2])])
        assert cs.clauses == frozenset({clause_of([2])})

    def test_tautology_and_contradiction_constructors(self):
        assert len(ClauseSet.tautology(VOCAB)) == 0
        falsum = ClauseSet.contradiction(VOCAB)
        assert falsum.has_empty_clause

    def test_from_strs(self):
        cs = ClauseSet.from_strs(VOCAB, ["A1 | ~A2", "A3"])
        assert clause_of([make_literal(0), make_literal(1, False)]) in cs
        assert clause_of([make_literal(2)]) in cs

    def test_from_strs_empty_clause_spelling(self):
        assert ClauseSet.from_strs(VOCAB, ["0"]).has_empty_clause

    def test_from_literal_set(self):
        cs = ClauseSet.from_literal_set(VOCAB, [1, -3])
        assert len(cs) == 2
        assert cs.length == 2

    def test_out_of_vocabulary_literal_rejected(self):
        with pytest.raises(VocabularyError):
            ClauseSet(VOCAB, [clause_of([6])])

    def test_zero_literal_rejected(self):
        with pytest.raises(VocabularyError):
            ClauseSet(VOCAB, [frozenset({0})])


class TestClauseSetProperties:
    PAPER_PHI = ClauseSet.from_strs(
        VOCAB, ["~A1 | A3", "A1 | A4", "A4 | A5", "~A1 | ~A2 | ~A5"]
    )

    def test_length_counts_distinct_literals(self):
        # Paper Example 3.1.5 state: lengths 2 + 2 + 2 + 3.
        assert self.PAPER_PHI.length == 9

    def test_prop_names(self):
        assert self.PAPER_PHI.prop_names == frozenset({"A1", "A2", "A3", "A4", "A5"})

    def test_satisfied_by(self):
        # World with A3, A4 true, rest false satisfies all four clauses.
        world = 0b01100
        assert self.PAPER_PHI.satisfied_by(world)
        # World with everything false falsifies A1 | A4.
        assert not self.PAPER_PHI.satisfied_by(0)

    def test_equality_and_hash(self):
        again = ClauseSet.from_strs(
            VOCAB, ["A4 | A5", "A1 | A4", "~A1 | A3", "~A2 | ~A1 | ~A5"]
        )
        assert again == self.PAPER_PHI
        assert hash(again) == hash(self.PAPER_PHI)

    def test_str_deterministic(self):
        assert str(self.PAPER_PHI) == str(self.PAPER_PHI)
        assert str(ClauseSet.tautology(VOCAB)) == "{1}"


class TestClauseSetOperations:
    def test_union(self):
        left = ClauseSet.from_strs(VOCAB, ["A1"])
        right = ClauseSet.from_strs(VOCAB, ["A2"])
        assert left.union(right) == ClauseSet.from_strs(VOCAB, ["A1", "A2"])

    def test_union_vocabulary_mismatch(self):
        with pytest.raises(VocabularyMismatchError):
            ClauseSet.from_strs(VOCAB, ["A1"]).union(
                ClauseSet.from_strs(Vocabulary.standard(3), ["A1"])
            )

    def test_with_clause(self):
        cs = ClauseSet.tautology(VOCAB).with_clause(clause_of([1]))
        assert len(cs) == 1

    def test_without_letters(self):
        cs = ClauseSet.from_strs(VOCAB, ["A1 | A2", "A3", "A2 | A4"])
        kept = cs.without_letters([1])  # drop anything mentioning A2
        assert kept == ClauseSet.from_strs(VOCAB, ["A3"])

    def test_without_letters_rejects_out_of_range_indices(self):
        # Regression: negative or too-large indices were silently
        # accepted (negatives even aliased other letters via Python
        # indexing of the bitmask); they must name the offending index.
        cs = ClauseSet.from_strs(VOCAB, ["A1 | A2", "A3"])
        with pytest.raises(VocabularyError, match="-1"):
            cs.without_letters([-1])
        with pytest.raises(VocabularyError, match="5"):
            cs.without_letters([0, 5])
        with pytest.raises(VocabularyError, match="outside the vocabulary"):
            cs.without_letters([99])

    def test_reduce_removes_subsumed(self):
        cs = ClauseSet.from_strs(VOCAB, ["A1", "A1 | A2", "A1 | A2 | A3", "A4 | A5"])
        assert cs.reduce() == ClauseSet.from_strs(VOCAB, ["A1", "A4 | A5"])

    def test_reduce_keeps_empty_clause_dominant(self):
        cs = ClauseSet.from_strs(VOCAB, ["0", "A1"])
        assert cs.reduce() == ClauseSet.contradiction(VOCAB)

    def test_to_formulas_deterministic_order(self):
        cs = ClauseSet.from_strs(VOCAB, ["A2 | A3", "A1"])
        rendered = [str(f) for f in cs.to_formulas()]
        assert rendered == ["A1", "(A2 | A3)"]


class TestClauseSignatures:
    def test_signature_sets_one_bit_per_letter(self):
        from repro.logic.clauses import clause_signature

        assert clause_signature(frozenset()) == 0
        assert clause_signature(clause_of([1])) == 0b1
        assert clause_signature(clause_of([-3])) == 0b100
        assert clause_signature(clause_of([1, -2, 5])) == 0b10011
        # Polarity is deliberately ignored: signatures track letters only.
        assert clause_signature(clause_of([2])) == clause_signature(clause_of([-2]))

    def test_signatures_property_covers_every_clause(self):
        from repro.logic.clauses import clause_props, clause_signature

        cs = ClauseSet.from_strs(VOCAB, ["A1 | ~A2", "A3", "~A4 | A5"])
        sigs = cs.signatures
        assert set(sigs) == set(cs.clauses)
        for clause, sig in sigs.items():
            assert sig == clause_signature(clause)
            assert {i for i in range(5) if sig >> i & 1} == clause_props(clause)

    def test_signature_is_necessary_for_subset(self):
        small = clause_of([1, 2])
        big = clause_of([1, 2, -3])
        disjoint = clause_of([4, 5])
        from repro.logic.clauses import clause_signature

        assert clause_signature(small) & clause_signature(big) == clause_signature(small)
        assert clause_signature(small) & clause_signature(disjoint) != clause_signature(
            small
        )
