"""Tests for the measurement harness (repro.bench.harness)."""

import math

import pytest

from repro.bench.harness import (
    _EPS,
    Measurement,
    Report,
    Timing,
    counting,
    fit_exponential_base,
    fit_loglog_slope,
    measure_seconds,
    measure_with_counters,
)
from repro.obs import core as obs_core


class TestFitting:
    def test_linear_data_has_slope_one(self):
        sizes = [100, 200, 400, 800]
        values = [3 * s for s in sizes]
        assert abs(fit_loglog_slope(sizes, values) - 1.0) < 1e-9

    def test_quadratic_data_has_slope_two(self):
        sizes = [10, 20, 40, 80]
        values = [0.5 * s * s for s in sizes]
        assert abs(fit_loglog_slope(sizes, values) - 2.0) < 1e-9

    def test_constant_data_has_slope_zero(self):
        assert abs(fit_loglog_slope([1, 2, 4], [5, 5, 5])) < 1e-9

    def test_zero_values_clamped_not_crashing(self):
        slope = fit_loglog_slope([1, 2, 4], [0.0, 0.0, 0.0])
        assert math.isfinite(slope)

    def test_both_fits_share_one_clamping_epsilon(self):
        # Zero values clamp to the same _EPS in both fitters, so the two
        # are consistent on degenerate data.
        assert math.isfinite(fit_exponential_base([1, 2, 3], [0.0, 0.0, 0.0]))
        assert abs(fit_loglog_slope([1, 2, 4], [_EPS, _EPS, _EPS])) < 1e-9
        assert abs(fit_exponential_base([1, 2, 3], [_EPS, _EPS, _EPS]) - 1.0) < 1e-9
        assert fit_loglog_slope([1, 2, 4], [0.0, 0.0, 0.0]) == fit_loglog_slope(
            [1, 2, 4], [_EPS, _EPS, _EPS]
        )

    def test_exponential_base_recovered(self):
        sizes = [4, 6, 8, 10]
        values = [7 * (1.5 ** s) for s in sizes]
        assert abs(fit_exponential_base(sizes, values) - 1.5) < 1e-9

    def test_exponential_base_of_flat_data_is_one(self):
        assert abs(fit_exponential_base([1, 2, 3], [4, 4, 4]) - 1.0) < 1e-9

    def test_degenerate_single_point(self):
        # Zero variance in x: slope defined as 0.
        assert fit_loglog_slope([5, 5], [1, 2]) == 0.0


class TestMeasureSeconds:
    def test_returns_positive_minimum(self):
        seconds = measure_seconds(lambda: sum(range(1000)), repeat=3)
        assert seconds > 0

    def test_minimum_of_repeats(self):
        calls = []

        def variable_cost():
            calls.append(None)
            # Later calls do less work.
            limit = 100_000 // len(calls)
            return sum(range(limit))

        best = measure_seconds(variable_cost, repeat=3)
        single = measure_seconds(lambda: sum(range(100_000)), repeat=1)
        assert best <= single * 2  # the fast repeat dominates

    @pytest.mark.parametrize("repeat", [0, -1])
    def test_nonpositive_repeat_rejected(self, repeat):
        with pytest.raises(ValueError, match="repeat"):
            measure_seconds(lambda: None, repeat=repeat)


class TestMeasureWithCounters:
    def test_captures_counters_alongside_timing(self):
        def workload():
            obs_core.inc("harness.test.widgets", 2)

        measurement = measure_with_counters(workload, repeat=2)
        assert isinstance(measurement, Measurement)
        assert measurement.seconds >= 0
        assert measurement.counters == {"harness.test.widgets": 2}

    def test_counter_capture_restores_disabled_flag(self):
        assert not obs_core.is_enabled()
        measure_with_counters(lambda: None, repeat=1)
        assert not obs_core.is_enabled()

    def test_empty_delta_when_workload_counts_nothing(self):
        measurement = measure_with_counters(lambda: sum(range(10)), repeat=1)
        assert measurement.counters == {}

    def test_repeat_guard_applies(self):
        with pytest.raises(ValueError, match="repeat"):
            measure_with_counters(lambda: None, repeat=0)


class TestReport:
    def make_report(self) -> Report:
        report = Report(
            ident="EX",
            title="demo",
            claim="things scale",
            columns=("size", "value"),
        )
        report.add_row(10, 1.5)
        report.add_row(200, 30.25)
        report.observed = "slope about 1"
        report.holds = True
        return report

    def test_render_contains_everything(self):
        text = self.make_report().render()
        assert "EX: demo" in text
        assert "things scale" in text
        assert "slope about 1" in text
        assert "SHAPE HOLDS" in text
        assert "200" in text and "30.25" in text

    def test_diverging_verdict_rendered(self):
        report = self.make_report()
        report.holds = False
        assert "DIVERGES" in report.render()

    def test_no_verdict_line_when_unset(self):
        report = Report(ident="E0", title="t", claim="c", columns=("a",))
        assert "verdict" not in report.render()

    def test_row_width_checked(self):
        report = self.make_report()
        with pytest.raises(ValueError, match="row width"):
            report.add_row(1, 2, 3)

    def test_columns_align(self):
        lines = self.make_report().render().splitlines()
        data_lines = [line for line in lines if line and line[0].isdigit()]
        header_line = next(line for line in lines if line.startswith("size"))
        assert all(len(line) <= len(header_line) + 10 for line in data_lines)

    def test_str_is_render(self):
        report = self.make_report()
        assert str(report) == report.render()

    def test_empty_report_renders(self):
        report = Report(ident="E0", title="t", claim="c", columns=("only",))
        assert "only" in report.render()


class TestTiming:
    def test_measure_seconds_returns_timing_with_samples(self):
        timing = measure_seconds(lambda: sum(range(100)), repeat=3)
        assert isinstance(timing, Timing)
        assert len(timing.samples) == 3
        assert float(timing) == min(timing.samples)

    def test_timing_is_a_float_for_existing_call_sites(self):
        timing = Timing([0.2, 0.4])
        assert isinstance(timing, float)
        assert timing * 2 == pytest.approx(0.4)
        assert f"{timing:.2f}" == "0.20"

    def test_spread_statistics(self):
        timing = Timing([0.1, 0.2, 0.3, 0.4])
        assert timing.minimum == pytest.approx(0.1)
        assert timing.maximum == pytest.approx(0.4)
        assert timing.mean == pytest.approx(0.25)
        assert timing.median == pytest.approx(0.25)
        assert timing.stddev > 0

    def test_single_repeat_has_zero_stddev(self):
        timing = measure_seconds(lambda: None, repeat=1)
        assert timing.stddev == 0.0
        assert timing.minimum == timing.maximum == float(timing)

    def test_measurement_carries_timing(self):
        measurement = measure_with_counters(lambda: None, repeat=2)
        assert isinstance(measurement.seconds, Timing)
        assert len(measurement.seconds.samples) == 2


class TestCounting:
    def make_report(self) -> Report:
        return Report(ident="EX", title="t", claim="c", columns=("a",))

    def test_counting_merges_delta_into_report(self):
        report = self.make_report()
        with counting(report):
            obs_core.inc("harness.test.steps", 3)
        assert report.counters == {"harness.test.steps": 3}

    def test_counting_restores_disabled_flag(self):
        assert not obs_core.is_enabled()
        with counting(self.make_report()):
            pass
        assert not obs_core.is_enabled()

    def test_counting_accumulates_across_blocks(self):
        report = self.make_report()
        with counting(report):
            obs_core.inc("harness.test.steps", 1)
        with counting(report):
            obs_core.inc("harness.test.steps", 2)
            obs_core.inc("harness.test.other", 5)
        assert report.counters == {
            "harness.test.steps": 3,
            "harness.test.other": 5,
        }

    def test_counting_records_even_when_body_raises(self):
        report = self.make_report()
        with pytest.raises(RuntimeError):
            with counting(report):
                obs_core.inc("harness.test.steps", 1)
                raise RuntimeError("boom")
        assert report.counters == {"harness.test.steps": 1}
