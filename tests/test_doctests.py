"""Run the doctests embedded in the library's docstrings.

Keeps the examples in the API documentation honest: if a docstring's
``>>>`` example drifts from the implementation, this fails.
"""

import doctest
import sys

import pytest

import repro.baselines.wilkins
import repro.blu.clausal_impl
import repro.blu.clausal_genmask
import repro.blu.clausal_mask
import repro.blu.definitions
import repro.blu.instance_impl
import repro.blu.parser
import repro.blu.sexpr
import repro.db.instances
import repro.db.literal_base
import repro.db.masks
import repro.db.schema
import repro.hlu.macros
import repro.hlu.session
import repro.hlu.surface
import repro.logic.clauses
import repro.logic.cnf
import repro.logic.formula
import repro.logic.implicates
import repro.logic.occurrence
import repro.logic.parser
import repro.logic.propositions
import repro.relational.constants
import repro.relational.grounding
import repro.relational.schema
import repro.relational.session

# Looked up via sys.modules: several packages re-export same-named
# *functions* (e.g. repro.db.literal_base the module vs repro.db's
# imported literal_base function), so attribute access would be shadowed.
MODULE_NAMES = [
    "repro.logic.propositions",
    "repro.logic.formula",
    "repro.logic.parser",
    "repro.logic.clauses",
    "repro.logic.cnf",
    "repro.logic.implicates",
    "repro.logic.occurrence",
    "repro.db.schema",
    "repro.db.instances",
    "repro.db.literal_base",
    "repro.db.masks",
    "repro.blu.sexpr",
    "repro.blu.parser",
    "repro.blu.instance_impl",
    "repro.blu.clausal_impl",
    "repro.blu.clausal_mask",
    "repro.blu.clausal_genmask",
    "repro.blu.definitions",
    "repro.hlu.macros",
    "repro.hlu.session",
    "repro.hlu.surface",
    "repro.relational.constants",
    "repro.relational.schema",
    "repro.relational.grounding",
    "repro.relational.session",
    "repro.baselines.wilkins",
]
MODULES = [sys.modules[name] for name in MODULE_NAMES]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0
    assert result.attempted > 0, f"{module.__name__} lost its doctest examples"
