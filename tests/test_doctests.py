"""Run the doctests embedded in the library's docstrings.

Keeps the examples in the API documentation honest: if a docstring's
``>>>`` example drifts from the implementation, this fails.
"""

import doctest
import importlib

import pytest

# Resolved via importlib rather than attribute access: several packages
# re-export same-named *functions* (e.g. repro.db.literal_base the
# module vs repro.db's imported literal_base function), so
# ``repro.db.literal_base`` as an expression would be shadowed.
MODULE_NAMES = [
    "repro.logic.propositions",
    "repro.logic.formula",
    "repro.logic.parser",
    "repro.logic.clauses",
    "repro.logic.cnf",
    "repro.logic.implicates",
    "repro.logic.occurrence",
    "repro.db.schema",
    "repro.db.instances",
    "repro.db.literal_base",
    "repro.db.masks",
    "repro.blu.sexpr",
    "repro.blu.parser",
    "repro.blu.instance_impl",
    "repro.blu.clausal_impl",
    "repro.blu.clausal_mask",
    "repro.blu.clausal_genmask",
    "repro.blu.definitions",
    "repro.hlu.audit",
    "repro.hlu.macros",
    "repro.hlu.session",
    "repro.hlu.surface",
    "repro.obs.provenance",
    "repro.relational.constants",
    "repro.relational.schema",
    "repro.relational.grounding",
    "repro.relational.session",
    "repro.baselines.wilkins",
]
MODULES = [importlib.import_module(name) for name in MODULE_NAMES]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0
    assert result.attempted > 0, f"{module.__name__} lost its doctest examples"
