"""Tests for the workload generators (repro.workloads.generators)."""

import random

import pytest

from repro.logic.clauses import clause_is_tautologous
from repro.logic.propositions import Vocabulary
from repro.workloads.generators import (
    clause_set_of_length,
    directory_schema,
    random_clause,
    random_clause_set,
    random_formula,
    update_stream,
)

VOCAB = Vocabulary.standard(10)


class TestRandomClause:
    def test_width_respected(self):
        rng = random.Random(0)
        for width in (1, 2, 3):
            clause = random_clause(rng, 10, width)
            assert len(clause) == width

    def test_never_tautologous(self):
        rng = random.Random(1)
        for _ in range(100):
            assert not clause_is_tautologous(random_clause(rng, 5, 3))

    def test_deterministic_under_seed(self):
        assert [random_clause(random.Random(7), 10, 3) for _ in range(5)] == [
            random_clause(random.Random(7), 10, 3) for _ in range(5)
        ]


class TestRandomClauseSet:
    def test_size_bounded_by_request(self):
        rng = random.Random(2)
        cs = random_clause_set(rng, VOCAB, 20, width=3)
        assert len(cs) <= 20  # dedup may shrink

    def test_width_clamped_to_vocabulary(self):
        rng = random.Random(3)
        small = Vocabulary.standard(2)
        cs = random_clause_set(rng, small, 5, width=6)
        assert all(len(c) <= 2 for c in cs)


class TestClauseSetOfLength:
    @pytest.mark.parametrize("target", [30, 99, 300])
    def test_length_is_nearly_exact(self, target):
        rng = random.Random(4)
        cs = clause_set_of_length(rng, VOCAB, target, width=3)
        assert target - 3 < cs.length <= target

    def test_impossible_target_raises(self):
        rng = random.Random(5)
        tiny = Vocabulary.standard(3)
        # Only C(3,3) * 2^3 = 8 distinct width-3 clauses exist: Length 24 max.
        with pytest.raises(ValueError, match="cannot reach"):
            clause_set_of_length(rng, tiny, 1000, width=3)


class TestRandomFormula:
    def test_letters_within_vocabulary(self):
        rng = random.Random(6)
        for _ in range(30):
            formula = random_formula(rng, VOCAB, depth=3)
            assert formula.props() <= set(VOCAB.names)

    def test_depth_zero_gives_variables(self):
        rng = random.Random(7)
        from repro.logic.formula import Var

        assert isinstance(random_formula(rng, VOCAB, depth=0), Var)


class TestUpdateStream:
    def test_stream_length_and_width(self):
        rng = random.Random(8)
        payloads = list(update_stream(rng, VOCAB, 7, width=2))
        assert len(payloads) == 7
        assert all(len(p.props()) == 2 for p in payloads)


class TestDirectorySchema:
    def test_domain_sizes(self):
        schema = directory_schema(5, person_count=3, dept_count=2)
        assert len(schema.algebra.named("telno")) == 5
        assert len(schema.algebra.named("person")) == 3
        assert schema.ground_fact_count() == 3 * 2 * 5
