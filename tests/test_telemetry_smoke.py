"""CI smoke for the live-telemetry path: ``--jobs 2 --live`` headless must
render the per-worker dashboard, write a telemetry feed that passes the
schema check, and round-trip through ``python -m repro.cli telemetry``.

Kept fast by running only the sub-second worked examples; marked
``smoke`` so it can be selected alone with ``pytest -m smoke``.
"""

import pytest

from repro.cli import main as cli_main
from repro.obs import core
from repro.obs import runtime


@pytest.fixture(autouse=True)
def clean_state(monkeypatch):
    monkeypatch.setenv("REPRO_LIVE_HEADLESS", "1")
    yield
    core.disable()
    core.reset()
    runtime.disable()
    runtime.reset()


@pytest.fixture()
def run_main(monkeypatch):
    import sys
    from pathlib import Path

    bench_dir = Path(__file__).resolve().parent.parent / "benchmarks"
    monkeypatch.syspath_prepend(str(bench_dir))
    sys.modules.pop("run_experiments", None)
    import run_experiments

    yield run_experiments.main
    sys.modules.pop("run_experiments", None)


@pytest.mark.smoke
def test_jobs_two_live_writes_valid_feed_and_dashboard(
    run_main, tmp_path, capsys
):
    feed_path = tmp_path / "telemetry_smoke.jsonl"
    code = run_main(
        ["E6", "E7", "--jobs", "2", "--live", "--telemetry-out", str(feed_path)]
    )
    captured = capsys.readouterr()
    assert code == 0
    assert f"telemetry feed written to {feed_path}" in captured.out

    # Headless dashboard: plain [live] progress lines plus a final frame
    # with one row per worker and the fleet TOTAL.
    assert "[live]" in captured.err
    assert "\x1b[" not in captured.err
    final_frame = captured.err[captured.err.rindex("== run_experiments") :]
    assert "E6" in final_frame and "E7" in final_frame
    assert "TOTAL" in final_frame
    assert "ops/s" in final_frame and "p50" in final_frame and "p99" in final_frame

    text = feed_path.read_text()
    errors = runtime.validate_feed(text)
    assert errors == [], "\n".join(errors)

    meta, snapshots = runtime.read_feed(text)
    assert meta["schema"] == runtime.FEED_SCHEMA_VERSION
    assert meta["workers"] == ["E6", "E7"]
    workers_seen = {snap.get("worker") for snap in snapshots}
    assert {"E6", "E7", "merged"} <= workers_seen
    combined = next(s for s in snapshots if s.get("worker") == "merged")
    # The instrumented hot layers fed the workers' registries.
    assert combined["meters"], "no rate meters reached the merged snapshot"
    assert any(name.endswith(".seconds") for name in combined["histograms"])


@pytest.mark.smoke
def test_cli_telemetry_round_trips_the_feed(run_main, tmp_path, capsys):
    feed_path = tmp_path / "telemetry_roundtrip.jsonl"
    assert run_main(["E6", "--telemetry-out", str(feed_path)]) == 0
    capsys.readouterr()

    code = cli_main(["telemetry", str(feed_path)])
    out = capsys.readouterr().out
    assert code == 0
    assert f"feed schema {runtime.FEED_SCHEMA_VERSION}" in out
    assert "snapshot(s)" in out
    assert "final state" in out

    code = cli_main(["telemetry", str(feed_path), "--prometheus"])
    out = capsys.readouterr().out
    assert code == 0
    assert "# TYPE" in out and "# HELP" in out

    # A corrupted feed must fail the schema gate with exit 2.
    bad = tmp_path / "bad.jsonl"
    bad.write_text("{not json\n")
    assert cli_main(["telemetry", str(bad)]) == 2


def test_single_job_live_telemetry_in_process(run_main, tmp_path, capsys):
    feed_path = tmp_path / "telemetry_single.jsonl"
    code = run_main(["E6", "--live", "--telemetry-out", str(feed_path)])
    captured = capsys.readouterr()
    assert code == 0
    assert "TOTAL" in captured.err
    text = feed_path.read_text()
    assert runtime.validate_feed(text) == [], "\n".join(runtime.validate_feed(text))
    meta, snapshots = runtime.read_feed(text)
    assert meta["worker"] == "main"
    assert snapshots, "in-process run streamed no snapshots"
    assert snapshots[-1]["meters"], "hot-layer hooks recorded nothing"
    # Telemetry must not leak into the next (non-telemetry) run.
    assert not runtime.is_enabled()


def test_telemetry_disabled_by_default_records_nothing(run_main, capsys):
    runtime.reset()
    code = run_main(["E6"])
    capsys.readouterr()
    assert code == 0
    snap = runtime.registry().snapshot()
    assert snap["counters"] == {}
    assert snap["meters"] == {}
    assert snap["histograms"] == {}


def test_telemetry_interval_must_be_positive(run_main, capsys):
    with pytest.raises(SystemExit):
        run_main(["E6", "--live", "--telemetry-interval", "0"])
    capsys.readouterr()
