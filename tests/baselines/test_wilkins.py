"""Tests for the Wilkins baseline (Section 3.3.1, Remark 1.4.7)."""

import pytest

from repro.baselines.wilkins import WilkinsDatabase
from repro.hlu.session import IncompleteDatabase
from repro.logic.clauses import ClauseSet
from repro.logic.propositions import Vocabulary
from repro.logic.semantics import models_of_clauses

VOCAB = Vocabulary.standard(4)


def project_to_base(db: WilkinsDatabase) -> frozenset[int]:
    """Models of the Wilkins state, projected onto the base letters."""
    base_bits = (1 << len(db.base_vocabulary)) - 1
    return frozenset(w & base_bits for w in models_of_clauses(db.state))


class TestUpdateMechanics:
    def test_insert_introduces_auxiliaries_per_syntactic_letter(self):
        db = WilkinsDatabase(VOCAB)
        db.insert("A1 | A2")
        assert db.aux_count == 2
        db.insert("A3")
        assert db.aux_count == 3

    def test_vocabulary_grows_monotonically(self):
        db = WilkinsDatabase(VOCAB)
        sizes = [len(db.vocabulary)]
        for _ in range(3):
            db.insert("A1")
            sizes.append(len(db.vocabulary))
        assert sizes == [4, 5, 6, 7]

    def test_assert_adds_no_auxiliaries(self):
        db = WilkinsDatabase(VOCAB)
        db.assert_("A1 & A2")
        assert db.aux_count == 0

    def test_update_is_rename_plus_add(self):
        db = WilkinsDatabase(VOCAB)
        db.assert_("A1 -> A2")
        before = len(db.state)
        db.insert("A1")
        # Same clause count plus the inserted unit clause.
        assert len(db.state) == before + 1


class TestSemanticAgreementWithHegner:
    SCRIPTS = [
        [("assert_", "A1 & A2"), ("insert", "~A1")],
        [("assert_", "A1 -> A2"), ("insert", "A1"), ("insert", "~A2")],
        [("insert", "A1 | A2"), ("delete", "A1")],
        [("assert_", "A1 & A3"), ("insert", "A2 | A3")],
    ]

    @pytest.mark.parametrize("script", SCRIPTS, ids=[str(s) for s in SCRIPTS])
    def test_projection_matches_hegner_when_syntactic_is_semantic(self, script):
        """For formulas whose syntactic letters are all semantically
        relevant, Wilkins and Hegner agree (Section 3.3.1: 'the semantics
        of her update algorithms are identical to ours')."""
        wilkins = WilkinsDatabase(VOCAB)
        hegner = IncompleteDatabase.over(4, backend="instance")
        for method, argument in script:
            getattr(wilkins, method)(argument)
            if method == "assert_":
                hegner.assert_(argument)
            elif method == "insert":
                hegner.insert(argument)
            else:
                hegner.delete(argument)
        assert project_to_base(wilkins) == hegner.worlds().worlds

    def test_remark_147_divergence_on_tautology(self):
        """insert(A1 | ~A1): identity for Hegner, masks A1 for Wilkins."""
        wilkins = WilkinsDatabase(VOCAB)
        wilkins.assert_("A1")
        wilkins.insert("A1 | ~A1")
        assert not wilkins.is_certain("A1")

        hegner = IncompleteDatabase.over(4).assert_("A1").insert("A1 | ~A1")
        assert hegner.is_certain("A1")

    def test_syntactic_vs_semantic_dependency(self):
        """insert((A1 | A2) & (A1 | ~A2)) masks A2 for Wilkins (syntactic)
        but not for Hegner (semantic: the formula is equivalent to A1)."""
        wilkins = WilkinsDatabase(VOCAB)
        wilkins.assert_("A2")
        wilkins.insert("(A1 | A2) & (A1 | ~A2)")
        assert not wilkins.is_certain("A2")

        hegner = IncompleteDatabase.over(4).assert_("A2")
        hegner.insert("(A1 | A2) & (A1 | ~A2)")
        assert hegner.is_certain("A2")


class TestQueries:
    def test_certain_and_possible(self):
        db = WilkinsDatabase(VOCAB)
        db.insert("A1 | A2")
        assert db.is_certain("A1 | A2")
        assert not db.is_certain("A1")
        assert db.is_possible("A1")
        assert not db.is_possible("~A1 & ~A2")

    def test_consistency(self):
        db = WilkinsDatabase(VOCAB)
        db.assert_("A1")
        db.assert_("~A1")
        assert not db.is_consistent()
        # insert, by contrast, repairs:
        db2 = WilkinsDatabase(VOCAB)
        db2.assert_("A1")
        db2.insert("~A1")
        assert db2.is_consistent()


class TestCleanup:
    def test_cleanup_removes_auxiliaries_and_preserves_base_knowledge(self):
        db = WilkinsDatabase(VOCAB)
        db.assert_("A1 & A2")
        db.insert("~A1")
        db.insert("A3")
        before = project_to_base(db)
        db.cleanup()
        assert db.aux_count == 0
        assert db.vocabulary == VOCAB
        assert models_of_clauses(db.state) == before

    def test_cleanup_idempotent(self):
        db = WilkinsDatabase(VOCAB)
        db.insert("A1 | A2")
        db.cleanup()
        state = db.state
        db.cleanup()
        assert db.state == state

    def test_initial_state_roundtrip(self):
        initial = ClauseSet.from_strs(VOCAB, ["A1 | A4"])
        db = WilkinsDatabase(VOCAB, state=initial)
        assert db.is_certain("A1 | A4")
