"""Property-based tests for the Section 3.3 baselines."""

from hypothesis import given, settings, strategies as st

from repro.baselines.minimal_change import MinimalChangeDatabase
from repro.baselines.wilkins import WilkinsDatabase
from repro.hlu.session import IncompleteDatabase
from repro.logic.formula import And, Iff, Implies, Not, Or, Var
from repro.logic.propositions import Vocabulary
from repro.logic.semantics import models_of_clauses

VOCAB = Vocabulary.standard(3)
N = len(VOCAB)

variables = st.sampled_from([Var(name) for name in VOCAB.names])
formulas = st.recursive(
    variables,
    lambda children: st.one_of(
        children.map(Not),
        st.tuples(children, children).map(And),
        st.tuples(children, children).map(Or),
        st.tuples(children, children).map(lambda p: Implies(*p)),
        st.tuples(children, children).map(lambda p: Iff(*p)),
    ),
    max_leaves=4,
)


def wilkins_base_worlds(db: WilkinsDatabase) -> frozenset[int]:
    base_bits = (1 << len(db.base_vocabulary)) - 1
    return frozenset(w & base_bits for w in models_of_clauses(db.state))


@given(st.lists(formulas, min_size=1, max_size=3))
@settings(max_examples=50, deadline=None)
def test_wilkins_insert_is_syntactic_mask_then_assert(script):
    """The Wilkins projection equals saturate-on-SYNTACTIC-letters then
    intersect, for every step of every script."""
    from repro.db.instances import WorldSet

    wilkins = WilkinsDatabase(VOCAB)
    reference = WorldSet.total(VOCAB)
    for formula in script:
        wilkins.insert(formula)
        syntactic = VOCAB.subset_indices(formula.props())
        reference = reference.saturate(syntactic).intersection(
            WorldSet.from_formulas(VOCAB, [formula])
        )
        assert wilkins_base_worlds(wilkins) == reference.worlds


@given(st.lists(formulas, min_size=1, max_size=3))
@settings(max_examples=40, deadline=None)
def test_wilkins_cleanup_preserves_base_models(script):
    wilkins = WilkinsDatabase(VOCAB)
    for formula in script:
        wilkins.insert(formula)
    before = wilkins_base_worlds(wilkins)
    wilkins.cleanup()
    assert models_of_clauses(wilkins.state) == before
    assert wilkins.aux_count == 0


@given(formulas)
@settings(max_examples=40, deadline=None)
def test_wilkins_agrees_with_hegner_iff_syntactic_equals_semantic(formula):
    """Characterises exactly when the two systems coincide on one insert
    from total ignorance: when Prop[phi] (syntactic) = Dep[Mod[phi]]
    (semantic), and only then -- Remark 1.4.7 generalised."""
    from repro.db.instances import WorldSet
    from repro.logic.semantics import dependency_indices

    wilkins = WilkinsDatabase(VOCAB)
    wilkins.insert(formula)
    hegner = IncompleteDatabase.over(N, backend="instance")
    hegner.insert(formula)

    syntactic = VOCAB.subset_indices(formula.props())
    mod = WorldSet.from_formulas(VOCAB, [formula]).worlds
    semantic = dependency_indices(VOCAB, mod)

    agree = wilkins_base_worlds(wilkins) == hegner.worlds().worlds
    # From total ignorance, saturation is invisible, so they always agree
    # on the RESULT here; the distinguishing test needs a prior state:
    assert agree

    prior = WilkinsDatabase(VOCAB)
    prior.assert_(VOCAB.names[0])  # know A1
    prior.insert(formula)
    hegner_prior = IncompleteDatabase.over(N, backend="instance")
    hegner_prior.assert_(VOCAB.names[0])
    hegner_prior.insert(formula)
    agree_with_prior = (
        wilkins_base_worlds(prior) == hegner_prior.worlds().worlds
    )
    if syntactic == semantic:
        assert agree_with_prior


@given(st.lists(formulas, min_size=1, max_size=2))
@settings(max_examples=30, deadline=None)
def test_minimal_change_insert_makes_formula_certain(script):
    db = MinimalChangeDatabase(VOCAB, [])
    for formula in script:
        db.insert(formula)
        worlds = db.world_set()
        if worlds:
            assert db.is_certain(formula)


@given(formulas, formulas)
@settings(max_examples=30, deadline=None)
def test_minimal_change_never_loses_consistency_unnecessarily(first, second):
    """If the inserted formula is satisfiable, the flock stays satisfiable
    (maximal consistent subsets always include the empty set)."""
    from repro.db.instances import WorldSet

    db = MinimalChangeDatabase(VOCAB, [first])
    db.insert(second)
    if WorldSet.from_formulas(VOCAB, [second]):
        assert db.world_set()
