"""Tests for V-tables, the template model (repro.baselines.tables; paper §4)."""

import pytest

from repro.baselines.tables import (
    TableVariable,
    VTable,
    is_representable,
    representable_world_sets,
)
from repro.db.instances import WorldSet
from repro.errors import SchemaError
from repro.relational.schema import RelationalSchema


@pytest.fixture()
def schema():
    return RelationalSchema.build(
        constants={"person": ["Jones"], "telno": ["T1", "T2"]},
        relations={"Phone": [("N", "person"), ("T", "telno")]},
    )


@pytest.fixture()
def tiny_schema():
    # Two ground facts: P(a), P(b) -- 4 worlds total.
    return RelationalSchema.build(
        constants={"thing": ["a", "b"]},
        relations={"P": [("X", "thing")]},
    )


class TestSemantics:
    def test_ground_table_denotes_one_world(self, schema):
        table = VTable(schema, [("Phone", ("Jones", "T1"))])
        worlds = table.world_set()
        assert len(worlds) == 1
        # Closed world: the *other* phone fact is false in that world.
        (world,) = worlds.worlds
        assert world == 1 << table.grounding.vocabulary.index_of("Phone.Jones.T1")

    def test_empty_table_denotes_the_empty_world(self, schema):
        table = VTable(schema, [])
        assert table.world_set().worlds == frozenset({0})

    def test_variable_row_denotes_one_world_per_value(self, schema):
        x = TableVariable("x", schema.algebra.named("telno"))
        table = VTable(schema, [("Phone", ("Jones", x))])
        worlds = table.world_set()
        assert len(worlds) == 2
        # Each world has exactly one phone fact (CWA!).
        assert all(bin(w).count("1") == 1 for w in worlds)

    def test_repeated_variable_covaries(self, tiny_schema):
        x = TableVariable("x", tiny_schema.algebra.universal)
        table = VTable(tiny_schema, [("P", (x,)), ("P", (x,))])
        # Both rows instantiate to the same fact: singleton worlds.
        assert all(bin(w).count("1") == 1 for w in table.world_set())

    def test_distinct_variables_vary_independently(self, tiny_schema):
        x = TableVariable("x", tiny_schema.algebra.universal)
        y = TableVariable("y", tiny_schema.algebra.universal)
        table = VTable(tiny_schema, [("P", (x,)), ("P", (y,))])
        worlds = table.world_set()
        # x=y gives singletons; x!=y gives the two-fact world.
        assert len(worlds) == 3

    def test_typing_violating_valuations_skipped(self, schema):
        x = TableVariable("x", schema.algebra.universal)  # person or telno
        table = VTable(schema, [("Phone", ("Jones", x))])
        # Only telno values produce worlds.
        assert len(table.world_set()) == 2


class TestValidation:
    def test_arity_checked(self, schema):
        with pytest.raises(SchemaError, match="entries"):
            VTable(schema, [("Phone", ("Jones",))])

    def test_constant_typing_checked(self, schema):
        with pytest.raises(SchemaError, match="typing"):
            VTable(schema, [("Phone", ("T1", "T1"))])

    def test_disjoint_variable_type_rejected(self, schema):
        x = TableVariable("x", schema.algebra.named("person"))
        with pytest.raises(SchemaError, match="disjoint"):
            VTable(schema, [("Phone", ("Jones", x))])


class TestRepresentability:
    """The §4 claim, both directions, machine-checked."""

    def test_jones_update_result_is_a_table(self, schema):
        # "Jones has some phone (exactly one, nothing else known to
        # exist)" is V-table representable.
        x = TableVariable("x", schema.algebra.named("telno"))
        target = VTable(schema, [("Phone", ("Jones", x))]).world_set()
        witness = is_representable(target, schema, max_rows=2, max_variables=1)
        assert witness is not None

    def test_nothing_or_both_is_not_representable(self, tiny_schema):
        """{{}, {P(a), P(b)}} -- 'no facts, or both facts' -- is not the
        world set of any small V-table: tables cannot correlate the
        *presence* of two rows."""
        grounding_vocab = VTable(tiny_schema, []).grounding.vocabulary
        target = WorldSet(grounding_vocab, {0b00, 0b11})
        assert is_representable(target, tiny_schema, max_rows=3, max_variables=2) is None

    def test_open_world_insert_result_is_a_table_via_row_collapse(self, tiny_schema):
        """Hegner's insert P(a) from total ignorance leaves P(b) open:
        {{P(a)}, {P(a), P(b)}}.  Perhaps surprisingly, this IS a V-table:
        {P(a), P(x)} -- the variable row *collapses onto* the constant row
        when x = a, acting as an optional fact.  ("It can represent many
        important cases arising in practice", §4.)"""
        grounding_vocab = VTable(tiny_schema, []).grounding.vocabulary
        index_a = grounding_vocab.index_of("P.a")
        index_b = grounding_vocab.index_of("P.b")
        target = WorldSet(
            grounding_vocab, {1 << index_a, (1 << index_a) | (1 << index_b)}
        )
        witness = is_representable(target, tiny_schema, max_rows=2, max_variables=1)
        assert witness is not None
        assert frozenset(witness.world_set().worlds) == target.worlds

    def test_representable_enumeration_is_sound(self, tiny_schema):
        for worlds, table in representable_world_sets(
            tiny_schema, max_rows=2, max_variables=1
        ).items():
            assert frozenset(table.world_set().worlds) == worlds

    def test_coverage_fraction_is_partial(self, tiny_schema):
        """Over 2 ground facts there are 2^4 = 16 possible world sets;
        small tables reach only some of them -- the measured shape of
        'not able to represent all possible worlds'."""
        reachable = representable_world_sets(tiny_schema, max_rows=3, max_variables=2)
        assert 0 < len(reachable) < 16
