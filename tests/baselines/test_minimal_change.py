"""Tests for the minimal-change / flock baseline (Section 3.3.2, E15)."""

from repro.baselines.minimal_change import (
    MinimalChangeDatabase,
    maximal_consistent_subsets,
)
from repro.hlu.session import IncompleteDatabase
from repro.logic.parser import parse_formula
from repro.logic.propositions import Vocabulary

VOCAB = Vocabulary.standard(3)


class TestMaximalConsistentSubsets:
    def test_consistent_insertion_keeps_everything(self):
        theory = (parse_formula("A1"), parse_formula("A2"))
        got = maximal_consistent_subsets(VOCAB, theory, parse_formula("A3"))
        assert got == (theory,)

    def test_conflict_drops_minimal_culprits(self):
        theory = (parse_formula("A1"), parse_formula("A1 -> A2"))
        got = maximal_consistent_subsets(VOCAB, theory, parse_formula("~A2"))
        # Either keep A1 (drop the implication) or keep the implication
        # (drop A1): two maximal alternatives.
        assert len(got) == 2
        assert all(len(subset) == 1 for subset in got)

    def test_unsatisfiable_insertion_gives_no_subsets(self):
        theory = (parse_formula("A1"),)
        got = maximal_consistent_subsets(VOCAB, theory, parse_formula("A2 & ~A2"))
        assert got == ()

    def test_empty_theory(self):
        got = maximal_consistent_subsets(VOCAB, (), parse_formula("A1"))
        assert got == ((),)


class TestFlockUpdates:
    def test_insert_into_conflicting_theory_forks_the_flock(self):
        db = MinimalChangeDatabase(VOCAB, ["A1", "A1 -> A2"])
        db.insert("~A2")
        assert len(db.flock) == 2
        assert db.is_certain("~A2")

    def test_insert_consistent_formula_no_fork(self):
        db = MinimalChangeDatabase(VOCAB, ["A1"])
        db.insert("A2")
        assert len(db.flock) == 1
        assert db.is_certain("A1 & A2")

    def test_delete_removes_entailment(self):
        db = MinimalChangeDatabase(VOCAB, ["A1", "A2"])
        db.delete("A1 & A2")
        assert not db.is_certain("A1 & A2")
        # But each alternative keeps one conjunct.
        assert db.is_certain("A1 | A2")

    def test_world_set_is_union_over_flock(self):
        db = MinimalChangeDatabase(VOCAB, ["A1", "A1 -> A2"])
        db.insert("~A2")
        worlds = db.world_set()
        # Alternative 1: {A1, ~A2}; alternative 2: {A1 -> A2, ~A2} = {~A1, ~A2}.
        assert worlds.satisfies_everywhere(parse_formula("~A2"))
        assert worlds.satisfies_somewhere(parse_formula("A1"))
        assert worlds.satisfies_somewhere(parse_formula("~A1"))


class TestSyntacticSensitivity:
    """Hegner's §3.3.2 critique: 'this definition of minimality is a
    purely syntactic one' -- logically equivalent theories can update
    differently."""

    def test_equivalent_presentations_update_differently(self):
        # T1 = {A1 & A2}; T2 = {A1, A2}: same models, different updates.
        packaged = MinimalChangeDatabase(VOCAB, ["A1 & A2"])
        separated = MinimalChangeDatabase(VOCAB, ["A1", "A2"])
        packaged.insert("~A1")
        separated.insert("~A1")
        # Separated retains A2 (only A1 is dropped); packaged loses both.
        assert separated.is_certain("A2")
        assert not packaged.is_certain("A2")
        assert packaged.world_set() != separated.world_set()


class TestDifferenceFromMaskAssert:
    """E15: minimal change is not mask-assert insertion."""

    def test_minimal_change_retains_more_than_hegner(self):
        # State: A1 <-> A2.  Insert ~A1.
        flock = MinimalChangeDatabase(VOCAB, ["A1 <-> A2"])
        flock.insert("~A1")
        hegner = IncompleteDatabase.over(3, backend="instance")
        hegner.assert_("A1 <-> A2")
        hegner.insert("~A1")
        # Minimal change keeps the biconditional (it is consistent with
        # ~A1), so A2 is certainly false.
        assert flock.is_certain("~A2")
        # Hegner's insert masks A1 -- the biconditional's A1-link makes A2
        # unknown afterwards.
        assert not hegner.is_certain("~A2")
        assert flock.world_set() != hegner.worlds()

    def test_agreement_on_independent_insertions(self):
        flock = MinimalChangeDatabase(VOCAB, ["A2"])
        flock.insert("A1")
        hegner = IncompleteDatabase.over(3, backend="instance")
        hegner.assert_("A2")
        hegner.insert("A1")
        assert flock.world_set() == hegner.worlds()


class TestSemanticMinimalChange:
    """The §3.3.2 'semantic version of minimal change', reconstructed."""

    def test_representation_independence(self):
        from repro.baselines.minimal_change import SemanticMinimalChangeDatabase

        # The flock's defect (syntax-sensitivity) disappears: equivalent
        # presentations give identical results.
        packaged = SemanticMinimalChangeDatabase(VOCAB, ["A1 & A2"])
        separated = SemanticMinimalChangeDatabase(VOCAB, ["A1", "A2"])
        packaged.insert("~A1")
        separated.insert("~A1")
        assert packaged.world_set() == separated.world_set()

    def test_minimal_repair_keeps_unrelated_letters(self):
        from repro.baselines.minimal_change import SemanticMinimalChangeDatabase

        db = SemanticMinimalChangeDatabase(VOCAB, ["A1", "A2", "A3"])
        db.insert("~A1")
        # Only A1 flips; A2, A3 survive.
        assert db.is_certain("~A1 & A2 & A3")

    def test_differs_from_mask_assert(self):
        from repro.baselines.minimal_change import SemanticMinimalChangeDatabase

        # State A1 & A2; insert ~A1 | ~A2.  Minimal change flips exactly
        # one letter per world ({~A1,A2} or {A1,~A2}); mask-assert masks
        # BOTH dependency letters, so the distance-2 world {~A1,~A2}
        # reappears as well.
        semantic = SemanticMinimalChangeDatabase(VOCAB, ["A1 & A2"])
        semantic.insert("~A1 | ~A2")
        hegner = IncompleteDatabase.over(3, backend="instance")
        hegner.assert_("A1 & A2").insert("~A1 | ~A2")
        assert not semantic.is_possible("~A1 & ~A2")
        assert hegner.is_possible("~A1 & ~A2")
        assert semantic.world_set() != hegner.worlds()
        assert semantic.world_set() <= hegner.worlds()

    def test_insert_makes_formula_certain(self):
        from repro.baselines.minimal_change import SemanticMinimalChangeDatabase

        db = SemanticMinimalChangeDatabase(VOCAB, ["A1 | A3"])
        db.insert("A2 & ~A3")
        assert db.is_certain("A2 & ~A3")

    def test_unsatisfiable_insert_empties(self):
        from repro.baselines.minimal_change import SemanticMinimalChangeDatabase

        db = SemanticMinimalChangeDatabase(VOCAB, ["A1"])
        db.insert("A2 & ~A2")
        assert not db.world_set()

    def test_each_world_moves_to_its_nearest_targets(self):
        from repro.baselines.minimal_change import semantic_minimal_insert
        from repro.db.instances import WorldSet
        from repro.logic.parser import parse_formula

        state = WorldSet(VOCAB, {0b000})
        moved = semantic_minimal_insert(state, parse_formula("A1 | A2"))
        # Nearest (A1|A2)-worlds to 000 at distance 1: 001 and 010 (not 011).
        assert moved == WorldSet(VOCAB, {0b001, 0b010})

    def test_insert_into_empty_state_recovers_formula_worlds(self):
        from repro.baselines.minimal_change import semantic_minimal_insert
        from repro.db.instances import WorldSet
        from repro.logic.parser import parse_formula

        moved = semantic_minimal_insert(
            WorldSet.empty(VOCAB), parse_formula("A1")
        )
        assert moved == WorldSet.from_formulas(VOCAB, [parse_formula("A1")])
