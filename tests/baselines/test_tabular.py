"""Tests for the Abiteboul-Grahne tabular primitives (Section 3.3.3, E14)."""

from repro.baselines.tabular import (
    TABULAR_PRIMITIVES,
    hlu_insert_transformer,
    search_for_transformer,
    t_difference,
    t_intersection,
    t_pointwise_and,
    t_pointwise_implies,
    t_pointwise_or,
    t_union,
)
from repro.db.instances import WorldSet
from repro.logic.propositions import Vocabulary

V2 = Vocabulary.standard(2)
V3 = Vocabulary.standard(3)


def ws(vocab, *worlds):
    return WorldSet(vocab, worlds)


class TestSetPrimitives:
    def test_union_intersection_difference(self):
        left = ws(V3, 0b001, 0b010)
        right = ws(V3, 0b010, 0b100)
        assert t_union(left, right) == ws(V3, 0b001, 0b010, 0b100)
        assert t_intersection(left, right) == ws(V3, 0b010)
        assert t_difference(left, right) == ws(V3, 0b001)

    def test_match_blu_combine_assert(self):
        # §3.3.3: "two of their basic update operators are precisely union
        # and intersection, which ... are precisely our combine and assert."
        from repro.blu.instance_impl import InstanceImplementation

        impl = InstanceImplementation(V3)
        left = ws(V3, 0b001, 0b111)
        right = ws(V3, 0b111, 0b100)
        assert t_union(left, right) == impl.op_combine(left, right)
        assert t_intersection(left, right) == impl.op_assert(left, right)

    def test_difference_via_complement(self):
        from repro.blu.instance_impl import InstanceImplementation

        impl = InstanceImplementation(V3)
        left = ws(V3, 0b001, 0b010)
        right = ws(V3, 0b010)
        assert t_difference(left, right) == impl.op_assert(
            left, impl.op_complement(right)
        )


class TestPointwisePrimitives:
    def test_pointwise_and(self):
        assert t_pointwise_and(ws(V2, 0b11), ws(V2, 0b01)) == ws(V2, 0b01)
        assert t_pointwise_and(ws(V2, 0b10, 0b01), ws(V2, 0b11)) == ws(
            V2, 0b10, 0b01
        )

    def test_pointwise_or(self):
        assert t_pointwise_or(ws(V2, 0b10), ws(V2, 0b01)) == ws(V2, 0b11)

    def test_pointwise_implies_truncated_to_vocabulary(self):
        # ~0b10 | 0b00 must stay within the two vocabulary bits.
        out = t_pointwise_implies(ws(V2, 0b10), ws(V2, 0b00))
        assert out == ws(V2, 0b01)

    def test_pointwise_ops_are_products(self):
        left = ws(V2, 0b00, 0b11)
        right = ws(V2, 0b01, 0b10)
        assert t_pointwise_or(left, right) == ws(V2, 0b01, 0b10, 0b11)

    def test_registry(self):
        assert set(TABULAR_PRIMITIVES) == {
            "union",
            "intersection",
            "difference",
            "and",
            "or",
            "implies",
        }


class TestExpressivenessGap:
    def test_target_transformer_is_hlu_insert(self):
        from repro.blu.instance_impl import InstanceImplementation
        from repro.hlu.programs import HLU_INSERT

        impl = InstanceImplementation(V2)
        state = ws(V2, 0b00)
        payload = WorldSet.from_texts(V2, ["A1 | A2"])
        assert hlu_insert_transformer(state, payload) == impl.run(
            HLU_INSERT, state, payload
        )

    def test_expressible_function_is_found(self):
        # Sanity: the search does find functions the primitives express.
        assert search_for_transformer(V2, t_union, max_rounds=1)
        assert search_for_transformer(
            V2, lambda x, y: t_intersection(t_union(x, y), x), max_rounds=2
        )

    def test_genmask_based_insert_not_found(self):
        """E14: the mask-by-genmask transformer is not reached -- the
        expressiveness gap Hegner conjectures."""
        assert not search_for_transformer(
            V2, hlu_insert_transformer, max_rounds=2, max_functions=5000
        )

    def test_unary_forget_dependency_not_found(self):
        # The unary X -> saturate(X, Dep(X)) (ignore second argument).
        def forget_dependency(x, _):
            return x.saturate(x.dependency_indices())

        assert not search_for_transformer(
            V2, forget_dependency, max_rounds=2, max_functions=5000
        )
