"""Tests for repro.server.protocol: round trips and malformed rejection."""

import json

import pytest

from repro.errors import ProtocolError
from repro.server import protocol


class TestParseRequest:
    def test_hello_round_trip(self):
        request = protocol.parse_request('{"id": 1, "op": "hello"}')
        assert request.id == 1
        assert request.op == "hello"
        assert request.session is None
        assert request.params == {}

    def test_string_ids_are_fine(self):
        request = protocol.parse_request('{"id": "a-7", "op": "stats"}')
        assert request.id == "a-7"

    def test_open_defaults(self):
        request = protocol.parse_request('{"id": 1, "op": "open", "session": "s"}')
        assert request.session == "s"
        assert request.params == {
            "letters": 8,
            "backend": "clausal",
            "constraints": [],
        }

    def test_open_explicit_letters_and_constraints(self):
        request = protocol.parse_request(
            json.dumps(
                {
                    "id": 2,
                    "op": "open",
                    "session": "s",
                    "letters": ["P", "Q"],
                    "backend": "instance",
                    "constraints": ["P -> Q"],
                }
            )
        )
        assert request.params["letters"] == ["P", "Q"]
        assert request.params["backend"] == "instance"
        assert request.params["constraints"] == ["P -> Q"]

    def test_update_requires_program(self):
        request = protocol.parse_request(
            '{"id": 3, "op": "update", "session": "s", "program": "(insert {A1})"}'
        )
        assert request.params["program"] == "(insert {A1})"

    def test_query_mode_defaults_to_certain(self):
        request = protocol.parse_request(
            '{"id": 4, "op": "query", "session": "s", "formula": "A1"}'
        )
        assert request.params == {"mode": "certain", "formula": "A1"}

    def test_bytes_lines_accepted(self):
        request = protocol.parse_request(b'{"id": 1, "op": "hello"}\n')
        assert request.op == "hello"


def _code_of(text: str | bytes) -> str:
    with pytest.raises(ProtocolError) as excinfo:
        protocol.parse_request(text)
    return excinfo.value.code


class TestMalformedRejection:
    def test_bad_json(self):
        assert _code_of("{nope") == "bad-json"

    def test_non_utf8_bytes(self):
        assert _code_of(b'{"id": 1, "op": "hel\xfflo"}') == "bad-json"

    def test_non_object(self):
        assert _code_of("[1, 2]") == "bad-request"

    def test_missing_id(self):
        assert _code_of('{"op": "hello"}') == "bad-request"

    def test_boolean_id_rejected(self):
        assert _code_of('{"id": true, "op": "hello"}') == "bad-request"

    def test_unknown_op(self):
        assert _code_of('{"id": 1, "op": "drop-tables"}') == "unknown-op"

    def test_session_ops_need_session(self):
        assert _code_of('{"id": 1, "op": "update", "program": "x"}') == "bad-request"

    def test_session_name_must_not_contain_slash(self):
        assert (
            _code_of('{"id": 1, "op": "open", "session": "a/b"}') == "bad-request"
        )

    def test_open_rejects_zero_letters(self):
        assert (
            _code_of('{"id": 1, "op": "open", "session": "s", "letters": 0}')
            == "bad-request"
        )

    def test_open_rejects_bool_letters(self):
        assert (
            _code_of('{"id": 1, "op": "open", "session": "s", "letters": true}')
            == "bad-request"
        )

    def test_open_rejects_unknown_backend(self):
        assert (
            _code_of(
                '{"id": 1, "op": "open", "session": "s", "backend": "sqlite"}'
            )
            == "bad-request"
        )

    def test_update_rejects_blank_program(self):
        assert (
            _code_of('{"id": 1, "op": "update", "session": "s", "program": " "}')
            == "bad-request"
        )

    def test_query_rejects_unknown_mode(self):
        assert (
            _code_of(
                '{"id": 1, "op": "query", "session": "s", '
                '"mode": "maybe", "formula": "A1"}'
            )
            == "bad-request"
        )

    def test_oversized_line(self):
        line = b'{"id": 1, "op": "hello", "pad": "' + b"x" * protocol.MAX_LINE_BYTES
        assert _code_of(line) == "line-too-long"

    def test_salvaged_id_rides_on_the_error(self):
        with pytest.raises(ProtocolError) as excinfo:
            protocol.parse_request('{"id": 9, "op": "nope"}')
        assert excinfo.value.request_id == 9


class TestResponses:
    def test_ok_response_echoes_id_and_payload(self):
        response = protocol.ok_response(7, result=True)
        assert response == {"id": 7, "ok": True, "result": True}

    def test_error_response_shape(self):
        response = protocol.error_response(None, "bad-json", "nope")
        assert response["ok"] is False
        assert response["error"]["code"] == "bad-json"
        assert response["error"]["code"] in protocol.ERROR_CODES

    def test_encode_is_one_terminated_line(self):
        blob = protocol.encode(protocol.ok_response(1))
        assert blob.endswith(b"\n")
        assert blob.count(b"\n") == 1
        assert json.loads(blob)["id"] == 1

    def test_hello_payload_names_the_dialect(self):
        payload = protocol.hello_payload()
        assert payload["protocol"] == protocol.PROTOCOL_VERSION
        assert tuple(payload["ops"]) == protocol.OPS
        assert "clausal" in payload["backends"]
