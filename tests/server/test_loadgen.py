"""End-to-end tests for repro.server.loadgen against a self-hosted service."""

import pytest

from repro.obs import metrics as metrics_mod
from repro.server import loadgen
from repro.server.loadgen import LoadConfig


class TestLoadConfig:
    def test_defaults_are_valid(self):
        config = LoadConfig()
        assert config.clients == 4
        assert config.scenario == "mixed"

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            LoadConfig(clients=0)
        with pytest.raises(ValueError):
            LoadConfig(duration=0)
        with pytest.raises(ValueError):
            LoadConfig(scenario="chaos")
        with pytest.raises(ValueError):
            LoadConfig(read_fraction=1.5)
        with pytest.raises(ValueError):
            LoadConfig(backend="sqlite")


@pytest.mark.smoke
class TestHeadlessLoadRun:
    def test_self_hosted_mixed_run_produces_a_clean_report(self, tmp_path):
        config = LoadConfig(clients=2, duration=1.0, letters=6, seed=7)
        report = loadgen.run_load(config, self_host=True)

        assert report["clients"] == 2
        assert report["scenario"] == "mixed"
        assert report["client_failures"] == 0
        assert report["errors"] == 0
        assert report["total_ops"] > 0
        assert report["ops_per_second"] > 0
        operations = report["operations"]
        assert set(operations) <= set(loadgen.REPORTED_OPS)
        assert sum(stats["count"] for stats in operations.values()) == (
            report["total_ops"]
        )
        for stats in operations.values():
            latency = stats["latency_seconds"]
            assert set(latency) == {"mean", "p50", "p90", "p99", "max"}

        # The report converts into a schema-v4 throughput block and a
        # BENCH record that round-trips through the reader.
        throughput = loadgen.report_to_throughput(report)
        assert throughput["total_ops"] == report["total_ops"]
        assert "client_failures" not in throughput

        out = tmp_path / "BENCH_srv.json"
        loadgen.write_bench_record(report, str(out))
        record = metrics_mod.read_run_record(out)
        assert record.schema_version == 4
        assert record.throughput is not None
        assert record.throughput["scenario"] == "mixed"
        assert record.experiments[0].ident == "bench_srv_mixed"
        assert record.experiments[0].holds is True
