"""Tests for repro.server.service: dispatch, isolation, drain, audit."""

import asyncio
import json

import pytest

from repro.hlu import audit as audit_mod
from repro.server import protocol
from repro.server.service import UpdateService
from repro.server.sessions import SessionRegistry


class Client:
    """A minimal test client over the service's Unix socket."""

    def __init__(self, reader, writer):
        self.reader = reader
        self.writer = writer
        self._ids = 0

    @classmethod
    async def connect(cls, path):
        reader, writer = await asyncio.open_unix_connection(path)
        return cls(reader, writer)

    async def call(self, op, **fields):
        self._ids += 1
        record = {"id": self._ids, "op": op, **fields}
        return await self.send_raw(protocol.encode(record))

    async def send_raw(self, blob: bytes):
        self.writer.write(blob)
        await self.writer.drain()
        line = await self.reader.readline()
        assert line, "server closed the connection"
        return json.loads(line)

    async def close(self):
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def run_service(test, **service_kwargs):
    """Start a service on a tmp Unix socket, run ``test(path, service)``."""

    async def _go():
        import tempfile
        from pathlib import Path

        with tempfile.TemporaryDirectory(prefix="repro-srv-test-") as tmp:
            path = str(Path(tmp) / "srv.sock")
            service = UpdateService(**service_kwargs)
            await service.start(socket_path=path)
            try:
                return await test(path, service)
            finally:
                await service.stop()

    return asyncio.run(_go())


class TestDispatch:
    def test_happy_path_update_query_undo_state_close(self):
        async def scenario(path, service):
            client = await Client.connect(path)
            hello = await client.call("hello")
            assert hello["ok"] and hello["protocol"] == protocol.PROTOCOL_VERSION

            opened = await client.call("open", session="s", letters=4)
            assert opened["ok"] and opened["letters"] == ["A1", "A2", "A3", "A4"]

            updated = await client.call(
                "update", session="s", program="(insert {A1 | A2}) (insert {~A3})"
            )
            assert updated["ok"] and updated["applied"] == 2
            assert updated["inconsistent"] is False

            certain = await client.call(
                "query", session="s", formula="A1 | A2", mode="certain"
            )
            assert certain["ok"] and certain["result"] is True

            possible = await client.call(
                "query", session="s", formula="A3", mode="possible"
            )
            assert possible["ok"] and possible["result"] is False

            state = await client.call("state", session="s")
            assert state["ok"] and len(state["history"]) == 2
            assert "A1 | A2" in state["clauses"]

            undone = await client.call("undo", session="s")
            assert undone["ok"] and undone["history_length"] == 1

            closed = await client.call("close", session="s")
            assert closed["ok"] and closed["closed"] is True

            missing = await client.call("query", session="s", formula="A1")
            assert not missing["ok"]
            assert missing["error"]["code"] == "unknown-session"
            await client.close()

        run_service(scenario)

    def test_explain_returns_verified_derivation(self):
        async def scenario(path, service):
            client = await Client.connect(path)
            await client.call("open", session="s", letters=3)
            await client.call(
                "update", session="s", program="(insert {A1 | A2}) (assert {~A1})"
            )
            explained = await client.call("explain", session="s", formula="A2")
            assert explained["ok"]
            assert explained["certain"] is True
            assert explained["verified"] is True
            assert explained["steps"] > 0
            assert "A2" in explained["derivation"]

            refuted = await client.call("explain", session="s", formula="A3")
            assert refuted["ok"] and refuted["certain"] is False
            await client.close()

        run_service(scenario)

    def test_malformed_line_answers_without_dropping_connection(self):
        async def scenario(path, service):
            client = await Client.connect(path)
            bad = await client.send_raw(b"{nope\n")
            assert not bad["ok"] and bad["error"]["code"] == "bad-json"
            # The connection survived: a valid request still works.
            hello = await client.call("hello")
            assert hello["ok"]
            await client.close()

        run_service(scenario)

    def test_rejected_update_is_an_error_response(self):
        async def scenario(path, service):
            client = await Client.connect(path)
            await client.call("open", session="s", letters=3)
            response = await client.call(
                "update", session="s", program="(insert {A9})"
            )
            assert not response["ok"]
            assert response["error"]["code"] == "rejected"
            # Session is still usable afterwards.
            ok = await client.call("query", session="s", formula="A1", mode="possible")
            assert ok["ok"] and ok["result"] is True
            await client.close()

        run_service(scenario)

    def test_duplicate_open_reports_session_exists(self):
        async def scenario(path, service):
            client = await Client.connect(path)
            assert (await client.call("open", session="s"))["ok"]
            again = await client.call("open", session="s")
            assert not again["ok"]
            assert again["error"]["code"] == "session-exists"
            await client.close()

        run_service(scenario)

    def test_stats_reports_sessions_and_connections(self):
        async def scenario(path, service):
            client = await Client.connect(path)
            await client.call("open", session="s")
            stats = await client.call("stats")
            assert stats["ok"]
            assert stats["sessions"] == 1
            assert stats["connections"] == 1
            assert stats["draining"] is False
            await client.close()

        run_service(scenario)


class TestIsolation:
    def test_two_connections_never_observe_each_other(self):
        """The same session name on two connections is two databases."""

        async def scenario(path, service):
            one = await Client.connect(path)
            two = await Client.connect(path)
            assert (await one.call("open", session="main", letters=3))["ok"]
            assert (await two.call("open", session="main", letters=3))["ok"]

            await one.call("update", session="main", program="(assert {A1})")
            mine = await one.call("query", session="main", formula="A1")
            theirs = await two.call("query", session="main", formula="A1")
            assert mine["result"] is True
            assert theirs["result"] is False  # ignorance, not A1

            # Registry keys are connection-scoped, so both names coexist.
            assert len(service.registry) == 2
            await one.close()
            await two.close()

        run_service(scenario)

    def test_connection_close_drops_its_sessions_only(self):
        async def scenario(path, service):
            one = await Client.connect(path)
            two = await Client.connect(path)
            await one.call("open", session="a")
            await two.call("open", session="b")
            await one.close()
            # Give the server a beat to run the connection teardown.
            for _ in range(100):
                if len(service.registry) == 1:
                    break
                await asyncio.sleep(0.01)
            assert service.registry.names() and all(
                name.endswith("/b") for name in service.registry.names()
            )
            await two.close()

        run_service(scenario)

    def test_concurrent_clients_pipelining_updates_stay_serialised(self):
        """Interleaved updates from concurrent connections all land."""

        async def scenario(path, service):
            clients = [await Client.connect(path) for _ in range(4)]
            for client in clients:
                assert (await client.call("open", session="w", letters=6))["ok"]

            async def hammer(client, letter):
                for _ in range(10):
                    response = await client.call(
                        "update", session="w", program=f"(insert {{{letter}}})"
                    )
                    assert response["ok"]

            await asyncio.gather(
                *(
                    hammer(client, f"A{i + 1}")
                    for i, client in enumerate(clients)
                )
            )
            for i, client in enumerate(clients):
                state = await client.call("state", session="w")
                assert state["history"].count(f"(insert {{A{i + 1}}})") == 10
                await client.close()

        run_service(scenario)


class TestDraining:
    def test_draining_rejects_new_work_but_answers(self):
        async def scenario(path, service):
            client = await Client.connect(path)
            await client.call("open", session="s")
            service.draining = True
            response = await client.call("query", session="s", formula="A1")
            assert not response["ok"]
            assert response["error"]["code"] == "draining"
            # hello and stats still answer while draining.
            assert (await client.call("hello"))["ok"]
            assert (await client.call("stats"))["ok"]
            await client.close()

        run_service(scenario)

    def test_graceful_drain_leaves_audit_replayable(self, tmp_path):
        trail = tmp_path / "audit.jsonl"

        async def scenario(path, service):
            client = await Client.connect(path)
            await client.call("open", session="s", letters=4)
            await client.call(
                "update", session="s", program="(insert {A1 | A2}) (delete {A4})"
            )
            await client.call("query", session="s", formula="A1 | A2")
            await client.call("undo", session="s")
            await client.close()

        audit_mod.enable(str(trail))
        try:
            run_service(scenario)  # run_service stops (drains) the service
        finally:
            audit_mod.disable()
        replay = audit_mod.replay_audit(str(trail))
        assert replay.ok, replay.render()

    def test_stop_closes_lingering_connections(self):
        async def scenario(path, service):
            client = await Client.connect(path)
            await client.call("open", session="s")
            await service.stop()
            # The server closed our transport; reads now hit EOF.
            line = await client.reader.readline()
            assert line == b""
            await client.close()

        run_service(scenario)


class TestRegistry:
    def test_idle_eviction_skips_busy_sessions(self):
        async def scenario():
            from repro.hlu.session import IncompleteDatabase

            clock = [0.0]
            registry = SessionRegistry(idle_timeout=10.0, clock=lambda: clock[0])
            idle = registry.open("c1/idle", IncompleteDatabase.over(2))
            busy = registry.open("c1/busy", IncompleteDatabase.over(2))
            del idle
            clock[0] = 20.0
            async with busy.lock:
                evicted = registry.evict_idle()
            assert evicted == ["c1/idle"]
            assert registry.get("c1/busy") is not None
            assert registry.evicted_total == 1

        asyncio.run(scenario())

    def test_registry_bounds_live_sessions(self):
        from repro.errors import EvaluationError
        from repro.hlu.session import IncompleteDatabase

        registry = SessionRegistry(max_sessions=1)
        registry.open("c1/a", IncompleteDatabase.over(2))
        with pytest.raises(EvaluationError):
            registry.open("c1/b", IncompleteDatabase.over(2))
