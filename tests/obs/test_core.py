"""Tests for repro.obs.core: spans, counters, isolation, and overhead."""

import contextvars
import math
import random
import threading
import timeit
import tracemalloc

import pytest

from repro.obs import core


class TestEnableFlag:
    def test_disabled_by_default(self):
        assert not core.is_enabled()

    def test_enable_disable(self):
        core.enable()
        assert core.is_enabled()
        core.disable()
        assert not core.is_enabled()

    def test_enabled_context_manager_restores(self):
        assert not core.is_enabled()
        with core.enabled():
            assert core.is_enabled()
        assert not core.is_enabled()

    def test_enabled_context_manager_preserves_on(self):
        core.enable()
        with core.enabled():
            pass
        assert core.is_enabled()


class TestSpans:
    def test_nesting_recorded_as_tree(self):
        core.enable()
        with core.span("outer"):
            with core.span("middle"):
                with core.span("leaf"):
                    pass
            with core.span("sibling"):
                pass
        roots = core.tracer().roots
        assert [r.name for r in roots] == ["outer"]
        assert [c.name for c in roots[0].children] == ["middle", "sibling"]
        assert [g.name for g in roots[0].children[0].children] == ["leaf"]

    def test_attributes_and_set(self):
        core.enable()
        with core.span("work", letters=3) as span:
            span.set(clauses_out=7)
        recorded = core.tracer().roots[0]
        assert recorded.attributes == {"letters": 3, "clauses_out": 7}

    def test_elapsed_is_recorded(self):
        core.enable()
        with core.span("timed"):
            sum(range(1000))
        assert core.tracer().roots[0].elapsed > 0

    def test_stack_empties_after_exit(self):
        core.enable()
        with core.span("a"):
            assert core.tracer().depth == 1
        assert core.tracer().depth == 0

    def test_stack_unwinds_on_exception(self):
        core.enable()
        with pytest.raises(RuntimeError):
            with core.span("a"):
                raise RuntimeError("boom")
        assert core.tracer().depth == 0
        assert core.tracer().roots[0].elapsed >= 0

    def test_walk_yields_depths(self):
        core.enable()
        with core.span("outer"):
            with core.span("inner"):
                pass
        walked = [(depth, span.name) for depth, span in core.tracer().walk()]
        assert walked == [(0, "outer"), (1, "inner")]

    def test_disabled_span_is_null(self):
        with core.span("ignored", big=1) as span:
            pass
        assert span is core._NULL_SPAN
        assert core.tracer().roots == []


class TestTracerClear:
    def test_clear_with_no_open_spans_empties_roots(self):
        core.enable()
        with core.span("done"):
            pass
        core.tracer().clear()
        assert core.tracer().roots == []
        assert core.tracer().depth == 0

    def test_clear_inside_open_span_reanchors_it(self):
        """Regression: spans recorded after a mid-span clear() used to land
        on a parent that was no longer reachable from any root."""
        core.enable()
        with core.span("outer"):
            with core.span("finished_child"):
                pass
            core.tracer().clear()
            with core.span("after_clear"):
                pass
        roots = core.tracer().roots
        assert [r.name for r in roots] == ["outer"]
        assert [c.name for c in roots[0].children] == ["after_clear"]

    def test_clear_preserves_open_span_nesting(self):
        core.enable()
        with core.span("a"):
            with core.span("b"):
                core.tracer().clear()
                assert [r.name for r in core.tracer().roots] == ["a"]
                assert core.tracer().depth == 2
                with core.span("c"):
                    pass
        a = core.tracer().roots[0]
        assert [child.name for child in a.children] == ["b"]
        assert [g.name for g in a.children[0].children] == ["c"]


class TestCounters:
    def test_inc_and_get(self):
        core.enable()
        core.inc("x")
        core.inc("x", 4)
        assert core.counters().get("x") == 5

    def test_get_missing_is_zero(self):
        assert core.counters().get("never") == 0

    def test_disabled_inc_records_nothing(self):
        core.inc("x", 100)
        assert core.counters().get("x") == 0

    def test_histogram_observations(self):
        core.enable()
        for value in (2.0, 8.0, 5.0):
            core.observe("sizes", value)
        histogram = core.counters().histogram("sizes")
        assert histogram.count == 3
        assert histogram.minimum == 2.0
        assert histogram.maximum == 8.0
        assert histogram.mean == 5.0

    def test_snapshot_and_delta(self):
        core.enable()
        core.inc("a", 2)
        before = core.counters().snapshot()
        core.inc("a", 3)
        core.inc("b")
        assert core.counters().delta(before) == {"a": 3, "b": 1}

    def test_delta_drops_unchanged(self):
        core.enable()
        core.inc("steady", 5)
        before = core.counters().snapshot()
        assert core.counters().delta(before) == {}

    def test_reset_clears_counts_and_histograms(self):
        core.enable()
        core.inc("a")
        core.observe("h", 1.0)
        core.counters().reset()
        assert core.counters().counts == {}
        assert core.counters().histogram("h") is None

    def test_module_reset_clears_spans_too(self):
        core.enable()
        with core.span("s"):
            core.inc("c")
        core.reset()
        assert core.tracer().roots == []
        assert core.counters().counts == {}


class TestHistogramQuantiles:
    def test_empty_histogram_has_no_quantiles(self):
        histogram = core.Histogram()
        assert histogram.quantile(0.5) is None
        assert histogram.p50 is None
        assert histogram.p90 is None
        assert histogram.p99 is None

    def test_fraction_out_of_range_rejected(self):
        histogram = core.Histogram()
        histogram.observe(1.0)
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            histogram.quantile(1.5)
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            histogram.quantile(-0.1)

    def test_single_observation_is_every_quantile(self):
        histogram = core.Histogram()
        histogram.observe(3.5)
        assert histogram.quantile(0.0) == 3.5
        assert histogram.p50 == 3.5
        assert histogram.p99 == 3.5

    def test_non_positive_values_share_underflow_bucket(self):
        histogram = core.Histogram()
        for value in (0.0, -2.0, 5.0):
            histogram.observe(value)
        assert histogram.buckets[core._ZERO_BUCKET] == 2
        assert histogram.p50 == 0.0  # underflow estimate, clamped to range
        assert histogram.p99 == 5.0  # top bucket midpoint clamps to max

    def test_quantiles_monotone_in_q_randomized(self):
        rng = random.Random(0xBEEF)
        for trial in range(20):
            histogram = core.Histogram()
            for _ in range(rng.randrange(1, 200)):
                histogram.observe(rng.lognormvariate(0.0, 3.0))
            assert histogram.p50 <= histogram.p90 <= histogram.p99
            previous = -math.inf
            for q in (0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0):
                estimate = histogram.quantile(q)
                assert histogram.minimum <= estimate <= histogram.maximum
                assert estimate >= previous
                previous = estimate

    def test_estimate_within_one_bucket_of_true_quantile(self):
        # The estimate is the geometric midpoint of a power-of-two bucket,
        # so it sits within a factor of sqrt(2) of the true rank statistic.
        rng = random.Random(7)
        values = sorted(rng.lognormvariate(0.0, 2.0) for _ in range(500))
        histogram = core.Histogram()
        for value in values:
            histogram.observe(value)
        for q in (0.5, 0.9, 0.99):
            true = values[max(1, math.ceil(q * len(values))) - 1]
            estimate = histogram.quantile(q)
            assert true / math.sqrt(2) * 0.999 <= estimate
            assert estimate <= true * math.sqrt(2) * 1.001

    def test_bucketless_restore_degrades_to_maximum(self):
        # Histograms restored from exports that predate buckets still
        # answer quantiles (clamped), instead of failing.
        histogram = core.Histogram(count=3, total=9.0, minimum=1.0, maximum=5.0)
        assert histogram.p50 == 5.0


class TestHistogramMerge:
    def _filled(self, *values):
        histogram = core.Histogram()
        for value in values:
            histogram.observe(value)
        return histogram

    def test_merge_combines_counts_totals_and_range(self):
        left = self._filled(1.0, 4.0)
        right = self._filled(0.5, 16.0)
        left.merge(right)
        assert left.count == 4
        assert left.total == 21.5
        assert left.minimum == 0.5
        assert left.maximum == 16.0

    def test_merge_returns_self_so_window_merges_chain(self):
        left = self._filled(1.0)
        assert left.merge(self._filled(2.0)) is left

    def test_merging_empty_histogram_is_a_noop(self):
        """Regression: an empty histogram's min/max sentinels (inf/-inf)
        must not poison the target's range."""
        target = self._filled(2.0, 3.0)
        target.merge(core.Histogram())
        assert target.count == 2
        assert target.minimum == 2.0
        assert target.maximum == 3.0

    def test_merging_empty_with_bogus_finite_sentinels_is_a_noop(self):
        """A degraded export can restore an empty histogram with finite
        min/max; count == 0 must still win."""
        target = self._filled(2.0, 3.0)
        bogus_empty = core.Histogram(count=0, total=0.0, minimum=-99.0, maximum=99.0)
        target.merge(bogus_empty)
        assert target.minimum == 2.0
        assert target.maximum == 3.0
        assert target.count == 2

    def test_merging_into_empty_adopts_other_range(self):
        target = core.Histogram()
        target.merge(self._filled(2.0, 8.0))
        assert target.count == 2
        assert target.minimum == 2.0
        assert target.maximum == 8.0
        assert target.p50 is not None

    def test_empty_into_empty_keeps_quantiles_none(self):
        target = core.Histogram()
        target.merge(core.Histogram())
        assert target.count == 0
        assert target.p50 is None

    def test_mismatched_bucket_sets_union(self):
        # 0.001 and 1000.0 land in buckets the other histogram lacks.
        left = self._filled(0.001)
        right = self._filled(1000.0)
        left_buckets = set(left.buckets)
        right_buckets = set(right.buckets)
        assert left_buckets.isdisjoint(right_buckets)
        left.merge(right)
        assert set(left.buckets) == left_buckets | right_buckets
        assert sum(left.buckets.values()) == left.count == 2

    def test_merge_is_exact_vs_single_histogram(self):
        rng = random.Random(0xC0DE)
        values = [rng.lognormvariate(0.0, 2.0) for _ in range(300)]
        single = self._filled(*values)
        merged = core.Histogram()
        for start in range(0, len(values), 50):
            merged.merge(self._filled(*values[start : start + 50]))
        assert merged.count == single.count
        assert merged.buckets == single.buckets
        assert merged.minimum == single.minimum
        assert merged.maximum == single.maximum
        assert merged.p50 == single.p50
        assert merged.p99 == single.p99


class TestCountersMerge:
    def test_counts_sum_and_histograms_merge(self):
        left = core.Counters()
        left.inc("shared", 2)
        left.observe("h", 1.0)
        right = core.Counters()
        right.inc("shared", 3)
        right.inc("only_right")
        right.observe("h", 5.0)
        right.observe("only_right_h", 2.0)
        left.merge(right)
        assert left.get("shared") == 5
        assert left.get("only_right") == 1
        assert left.histogram("h").count == 2
        assert left.histogram("h").maximum == 5.0
        assert left.histogram("only_right_h").count == 1

    def test_merging_counters_with_empty_histogram_keeps_target_range(self):
        left = core.Counters()
        left.observe("h", 4.0)
        right = core.Counters()
        right._histograms["h"] = core.Histogram()  # empty, sentinel min/max
        left.merge(right)
        assert left.histogram("h").minimum == 4.0
        assert left.histogram("h").maximum == 4.0


class TestSpanIds:
    def test_span_ids_are_unique_and_increasing(self):
        core.enable()
        with core.span("a") as a:
            with core.span("b") as b:
                pass
        assert a.sid > 0
        assert b.sid > a.sid

    def test_current_span_tracks_the_open_span(self):
        core.enable()
        assert core.current_span() is None
        with core.span("outer") as outer:
            assert core.current_span() is outer
            with core.span("inner") as inner:
                assert core.current_span() is inner
            assert core.current_span() is outer
        assert core.current_span() is None

    def test_current_span_is_none_while_disabled(self):
        with core.span("ignored"):
            assert core.current_span() is None


class TestTrackMemory:
    def test_records_peak_and_current(self):
        with core.track_memory() as sample:
            retained = [0] * 100_000
        assert sample.peak_bytes >= 100_000 * 8
        assert 0 <= sample.current_bytes <= sample.peak_bytes
        del retained
        assert not tracemalloc.is_tracing()

    def test_released_allocations_show_in_peak_not_current(self):
        with core.track_memory() as sample:
            transient = [0] * 100_000
            del transient
        assert sample.peak_bytes >= 100_000 * 8
        assert sample.current_bytes < sample.peak_bytes

    def test_nested_tracking_keeps_outer_alive(self):
        with core.track_memory() as outer:
            with core.track_memory() as inner:
                blob = [0] * 50_000
            assert tracemalloc.is_tracing()
            del blob
        assert not tracemalloc.is_tracing()
        assert inner.peak_bytes >= 50_000 * 8
        assert outer.peak_bytes >= inner.peak_bytes * 0  # both filled in
        assert outer.peak_bytes > 0

    def test_works_independently_of_enable_flag(self):
        assert not core.is_enabled()
        with core.track_memory() as sample:
            pass
        assert sample.peak_bytes >= 0

    def test_to_json_keys(self):
        sample = core.MemorySample(current_bytes=3, peak_bytes=9)
        assert sample.to_json() == {"current_bytes": 3, "peak_bytes": 9}


class TestIsolation:
    def test_thread_gets_its_own_state(self):
        core.enable()
        core.inc("main_only")
        seen_in_thread = {}

        def worker():
            core.inc("thread_only", 7)
            seen_in_thread["main_only"] = core.counters().get("main_only")
            seen_in_thread["thread_only"] = core.counters().get("thread_only")

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert seen_in_thread == {"main_only": 0, "thread_only": 7}
        assert core.counters().get("thread_only") == 0
        assert core.counters().get("main_only") == 1

    def test_fresh_contextvars_context_is_isolated(self):
        core.enable()
        core.inc("outer")

        def in_context():
            core.inc("inner", 3)
            with core.span("inner_span"):
                pass
            return (
                core.counters().get("outer"),
                core.counters().get("inner"),
                [s.name for s in core.tracer().roots],
            )

        result = contextvars.Context().run(in_context)
        assert result == (0, 3, ["inner_span"])
        assert core.counters().get("inner") == 0
        assert core.tracer().roots == []

    def test_enable_flag_is_process_wide(self):
        core.enable()
        flag_in_thread = []
        thread = threading.Thread(target=lambda: flag_in_thread.append(core.is_enabled()))
        thread.start()
        thread.join()
        assert flag_in_thread == [True]


def _bare(name):
    pass


class TestOverhead:
    def test_disabled_counter_path_is_near_noop(self):
        """The disabled instrumentation path must cost < 2x a bare call loop.

        One call per loop iteration on each side (same argument shape), so
        the measured difference is exactly the flag check inside inc().
        Best-of-several to shrug off scheduler noise.
        """
        assert not core.is_enabled()
        number = 50_000
        bare = min(
            timeit.repeat(
                "fn('overhead.probe')", globals={"fn": _bare}, number=number, repeat=9
            )
        )
        probed = min(
            timeit.repeat(
                "fn('overhead.probe')", globals={"fn": core.inc}, number=number, repeat=9
            )
        )
        ratio = probed / bare
        assert ratio < 2.0, f"disabled inc() cost {ratio:.2f}x a bare call"

    def test_disabled_span_records_nothing_and_is_cheap(self):
        assert not core.is_enabled()
        for _ in range(1000):
            with core.span("hot"):
                pass
        assert core.tracer().roots == []
