"""Fixtures for the observability tests: every test starts and ends with
instrumentation off and a clean context-local state (and a clean
process-wide telemetry registry)."""

import pytest

from repro.obs import core, runtime


@pytest.fixture(autouse=True)
def clean_obs():
    core.disable()
    core.reset()
    runtime.disable()
    runtime.reset()
    yield
    core.disable()
    core.reset()
    runtime.disable()
    runtime.reset()
