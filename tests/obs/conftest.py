"""Fixtures for the observability tests: every test starts and ends with
instrumentation off and a clean context-local state."""

import pytest

from repro.obs import core


@pytest.fixture(autouse=True)
def clean_obs():
    core.disable()
    core.reset()
    yield
    core.disable()
    core.reset()
