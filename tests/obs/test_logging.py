"""Tests for repro.obs.logging: JSON log lines and span correlation."""

import json
import logging

from repro.obs import core
from repro.obs import logging as structured


def _lines(buffer):
    return [json.loads(line) for line in buffer.getvalue().splitlines()]


class TestJsonLines:
    def test_each_record_is_one_json_object(self):
        logger, buffer = structured.capture_buffer(name="repro.test.basic")
        logger.info("first")
        logger.warning("second %s", "formatted")
        first, second = _lines(buffer)
        assert first["schema"] == structured.LOG_SCHEMA_VERSION
        assert first["level"] == "info"
        assert first["logger"] == "repro.test.basic"
        assert first["message"] == "first"
        assert isinstance(first["ts"], float)
        assert second["level"] == "warning"
        assert second["message"] == "second formatted"

    def test_extra_attributes_survive(self):
        logger, buffer = structured.capture_buffer(name="repro.test.extra")
        logger.info("op done", extra={"ident": "E6", "clauses": 17})
        (record,) = _lines(buffer)
        assert record["extra"] == {"ident": "E6", "clauses": 17}

    def test_non_json_extra_falls_back_to_str(self):
        logger, buffer = structured.capture_buffer(name="repro.test.objextra")
        logger.info("op", extra={"obj": frozenset({1})})
        (record,) = _lines(buffer)
        assert "1" in record["extra"]["obj"]

    def test_exception_traceback_is_carried(self):
        logger, buffer = structured.capture_buffer(name="repro.test.exc")
        try:
            raise ValueError("boom")
        except ValueError:
            logger.exception("failed")
        (record,) = _lines(buffer)
        assert record["level"] == "error"
        assert "ValueError: boom" in record["exc"]

    def test_level_filtering_applies(self):
        logger, buffer = structured.capture_buffer(
            level=logging.WARNING, name="repro.test.level"
        )
        logger.info("dropped")
        logger.error("kept")
        records = _lines(buffer)
        assert [r["message"] for r in records] == ["kept"]


class TestSpanCorrelation:
    def test_record_inside_span_carries_name_and_sid(self):
        core.enable()
        logger, buffer = structured.capture_buffer(name="repro.test.span")
        with core.span("hlu.apply") as span:
            logger.info("mid-span")
        logger.info("after-span")
        mid, after = _lines(buffer)
        assert mid["span"] == "hlu.apply"
        assert mid["span_id"] == span.sid
        assert "span" not in after
        assert "span_id" not in after

    def test_nested_span_wins(self):
        core.enable()
        logger, buffer = structured.capture_buffer(name="repro.test.nested")
        with core.span("outer"):
            with core.span("inner") as inner:
                logger.info("deep")
        (record,) = _lines(buffer)
        assert record["span"] == "inner"
        assert record["span_id"] == inner.sid

    def test_disabled_instrumentation_means_no_span_fields(self):
        logger, buffer = structured.capture_buffer(name="repro.test.off")
        with core.span("ignored"):
            logger.info("plain")
        (record,) = _lines(buffer)
        assert "span" not in record


class TestConfigure:
    def test_reconfigure_replaces_handler_not_stacks(self):
        import io

        first = io.StringIO()
        second = io.StringIO()
        structured.configure(first, name="repro.test.reconf")
        logger = structured.configure(second, name="repro.test.reconf")
        assert len(logger.handlers) == 1
        logger.info("once")
        assert first.getvalue() == ""
        assert len(_lines(second)) == 1

    def test_propagation_is_disabled(self):
        logger, _ = structured.capture_buffer(name="repro.test.noprop")
        assert logger.propagate is False

    def test_get_logger_returns_same_instance(self):
        logger, _ = structured.capture_buffer(name="repro.test.same")
        assert structured.get_logger("repro.test.same") is logger
