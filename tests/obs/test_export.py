"""Tests for repro.obs.export: span trees, JSON-lines, counter tables."""

import json

from repro.obs import core
from repro.obs.export import (
    counter_report,
    counters_from_jsonl,
    export_jsonl,
    render_span_tree,
    spans_from_jsonl,
    validate_jsonl,
)


def _record_sample():
    core.enable()
    with core.span("hlu.apply", update="insert"):
        with core.span("blu.c.mask", letters=2):
            core.inc("resolvents", 5)
        with core.span("blu.c.assert"):
            core.inc("clauses", 3)
    core.observe("state_size", 4.0)
    core.observe("state_size", 6.0)
    core.disable()
    return core.tracer(), core.counters()


class TestSpanTree:
    def test_renders_names_nesting_and_attributes(self):
        tracer, _ = _record_sample()
        text = render_span_tree(tracer)
        lines = text.splitlines()
        assert lines[0].startswith("hlu.apply")
        assert lines[1].startswith("  blu.c.mask")
        assert "letters=2" in lines[1]
        assert "ms" in lines[0]

    def test_empty_tracer_renders_placeholder(self):
        assert render_span_tree([]) == "(no spans recorded)"


class TestJsonl:
    def test_round_trip_preserves_tree_and_values(self):
        tracer, counters = _record_sample()
        text = export_jsonl(tracer, counters)

        roots = spans_from_jsonl(text)
        assert [r.name for r in roots] == ["hlu.apply"]
        assert roots[0].attributes == {"update": "insert"}
        assert [c.name for c in roots[0].children] == ["blu.c.mask", "blu.c.assert"]
        assert roots[0].children[0].attributes == {"letters": 2}
        assert roots[0].elapsed == tracer.roots[0].elapsed

        rebuilt = counters_from_jsonl(text)
        assert rebuilt.get("resolvents") == 5
        assert rebuilt.get("clauses") == 3
        histogram = rebuilt.histogram("state_size")
        assert histogram.count == 2
        assert histogram.minimum == 4.0
        assert histogram.maximum == 6.0

    def test_every_line_is_json(self):
        tracer, counters = _record_sample()
        for line in export_jsonl(tracer, counters).splitlines():
            json.loads(line)

    def test_non_string_attributes_round_trip(self):
        core.enable()
        with core.span("typed", letters=3, ratio=0.5, formula="phi", pair=(1, 2)):
            pass
        core.disable()
        text = export_jsonl(core.tracer())
        restored = spans_from_jsonl(text).pop().attributes
        assert restored["letters"] == 3
        assert restored["ratio"] == 0.5
        assert restored["formula"] == "phi"
        assert restored["pair"] == [1, 2]  # tuples come back as JSON arrays
        assert validate_jsonl(text) == []

    def test_histogram_round_trip_preserves_buckets_and_quantiles(self):
        _, counters = _record_sample()
        rebuilt = counters_from_jsonl(export_jsonl([], counters))
        original = counters.histogram("state_size")
        restored = rebuilt.histogram("state_size")
        assert restored.buckets == original.buckets
        assert restored.p50 == original.p50
        assert restored.p99 == original.p99

    def test_empty_histogram_exports_null_min_max(self):
        # Regression: the +/-inf sentinels used to leak into the JSON as
        # bare Infinity tokens, which no strict parser accepts.
        registry = core.Counters()
        registry._histograms["never_observed"] = core.Histogram()
        text = export_jsonl([], registry)
        (record,) = [json.loads(line) for line in text.splitlines()]
        assert record["count"] == 0
        assert record["min"] is None
        assert record["max"] is None
        assert validate_jsonl(text) == []
        restored = counters_from_jsonl(text).histogram("never_observed")
        assert restored.count == 0
        assert restored.minimum == float("inf")
        assert restored.maximum == float("-inf")
        assert restored.p50 is None

    def test_pre_bucket_exports_still_load(self):
        record = {
            "type": "histogram",
            "name": "legacy",
            "count": 2,
            "total": 6.0,
            "min": 1.0,
            "max": 5.0,
        }
        restored = counters_from_jsonl(json.dumps(record)).histogram("legacy")
        assert restored.count == 2
        assert restored.buckets == {}
        assert restored.p50 == 5.0  # degrades to the clamp, not a crash

    def test_export_without_counters(self):
        tracer, _ = _record_sample()
        text = export_jsonl(tracer)
        assert '"type": "counter"' not in text

    def test_empty_export_is_empty(self):
        assert export_jsonl([]) == ""


class TestValidation:
    def test_valid_output_passes(self):
        tracer, counters = _record_sample()
        assert validate_jsonl(export_jsonl(tracer, counters)) == []

    def test_garbage_line_reported(self):
        errors = validate_jsonl("not json at all\n")
        assert errors and "line 1" in errors[0]

    def test_unknown_type_reported(self):
        errors = validate_jsonl('{"type": "mystery"}\n')
        assert any("unknown record type" in e for e in errors)

    def test_missing_span_key_reported(self):
        record = {"type": "span", "id": 0, "name": "x"}
        errors = validate_jsonl(json.dumps(record))
        assert any("span keys" in e for e in errors)

    def test_orphan_parent_reported(self):
        record = {
            "type": "span",
            "id": 1,
            "parent": 99,
            "name": "x",
            "start": 0.0,
            "elapsed": 0.0,
            "attributes": {},
        }
        errors = validate_jsonl(json.dumps(record))
        assert any("parent 99" in e for e in errors)

    def test_counter_value_type_checked(self):
        record = {"type": "counter", "name": "x", "value": "three"}
        errors = validate_jsonl(json.dumps(record))
        assert any("int value" in e for e in errors)

    def _histogram_record(self, **overrides):
        record = {
            "type": "histogram",
            "name": "h",
            "count": 2,
            "total": 6.0,
            "min": 2.0,
            "max": 4.0,
            "buckets": {"2": 2},
        }
        record.update(overrides)
        return json.dumps(record)

    def test_valid_histogram_record_passes(self):
        assert validate_jsonl(self._histogram_record()) == []

    def test_histogram_missing_buckets_reported(self):
        record = json.loads(self._histogram_record())
        del record["buckets"]
        errors = validate_jsonl(json.dumps(record))
        assert any("histogram keys" in e for e in errors)

    def test_histogram_negative_count_reported(self):
        errors = validate_jsonl(self._histogram_record(count=-1))
        assert any("non-negative int" in e for e in errors)

    def test_empty_histogram_must_have_null_min_max(self):
        errors = validate_jsonl(
            self._histogram_record(count=0, min=0.0, max=0.0, buckets={})
        )
        assert any("null min" in e for e in errors)
        assert any("null max" in e for e in errors)

    def test_nonempty_histogram_min_must_be_numeric(self):
        errors = validate_jsonl(self._histogram_record(min=None))
        assert any("min must be a number" in e for e in errors)

    def test_histogram_bucket_keys_must_be_integer_strings(self):
        errors = validate_jsonl(self._histogram_record(buckets={"two": 2}))
        assert any("integer-string exponent" in e for e in errors)

    def test_histogram_bucket_counts_must_sum_to_count(self):
        errors = validate_jsonl(self._histogram_record(buckets={"2": 1}))
        assert any("sum to 1" in e for e in errors)

    def test_blank_lines_ignored(self):
        tracer, counters = _record_sample()
        text = "\n" + export_jsonl(tracer, counters) + "\n\n"
        assert validate_jsonl(text) == []


class TestCounterReport:
    def test_from_registry_includes_histograms(self):
        _, counters = _record_sample()
        text = counter_report(counters).render()
        assert "resolvents" in text
        assert "5" in text
        assert "state_size" in text
        assert "mean=5.0" in text

    def test_from_plain_mapping(self):
        text = counter_report({"b": 2, "a": 1}).render()
        assert text.index("a") < text.index("b")  # sorted rows

    def test_custom_identity(self):
        _, counters = _record_sample()
        text = counter_report(counters, ident="STATS", title="deltas").render()
        assert "== STATS: deltas ==" in text
