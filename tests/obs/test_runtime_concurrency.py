"""Concurrency tests for repro.obs.runtime telemetry emission.

The update service feeds one :class:`TelemetryWriter` from a
:class:`TelemetryPump` thread *and* workload flush points, so snapshot
emission must be atomic: exactly one meta line, no interleaved partial
lines, ``seq`` increasing in line order.  These tests pin that contract
by hammering a shared writer from many threads.
"""

import io
import json
import threading

from repro.obs.runtime import (
    MetricsRegistry,
    TelemetryWriter,
    read_feed,
    validate_feed,
)

THREADS = 8
SNAPSHOTS_PER_THREAD = 25


def _hammer(writer: TelemetryWriter, barrier: threading.Barrier) -> None:
    barrier.wait()
    for _ in range(SNAPSHOTS_PER_THREAD):
        writer.write_snapshot()


class TestConcurrentTelemetryWriter:
    def test_concurrent_snapshots_yield_a_valid_feed(self):
        registry = MetricsRegistry(window_seconds=5.0)
        sink = io.StringIO()
        writer = TelemetryWriter(sink, source=registry, worker="stress")

        barrier = threading.Barrier(THREADS)
        threads = [
            threading.Thread(target=_hammer, args=(writer, barrier))
            for _ in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        text = sink.getvalue()
        lines = text.splitlines()
        # Exactly one meta line, and it comes first.
        metas = [line for line in lines if json.loads(line)["type"] == "meta"]
        assert len(metas) == 1
        assert json.loads(lines[0])["type"] == "meta"
        # Every line is complete JSON (no interleaved partial writes) and
        # the feed as a whole validates.
        assert len(lines) == 1 + THREADS * SNAPSHOTS_PER_THREAD
        assert validate_feed(text) == []
        meta, snapshots = read_feed(text)
        assert meta is not None and meta["worker"] == "stress"
        # seq order matches line order -- snapshots are taken inside the
        # emit lock, so a later line can never carry an earlier seq.
        seqs = [snap["seq"] for snap in snapshots]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    def test_concurrent_record_op_keeps_histogram_counts(self):
        registry = MetricsRegistry(window_seconds=60.0)
        per_thread = 200
        barrier = threading.Barrier(THREADS)

        def work() -> None:
            barrier.wait()
            for _ in range(per_thread):
                registry.record_op("srv.update", 0.001)

        threads = [threading.Thread(target=work) for _ in range(THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        snap = registry.snapshot()
        assert snap["meters"]["srv.update"]["count"] == THREADS * per_thread
        histogram = snap["histograms"]["srv.update.seconds"]
        assert histogram["count"] == THREADS * per_thread

    def test_close_without_snapshots_still_writes_meta_once(self):
        registry = MetricsRegistry(window_seconds=5.0)
        sink = io.StringIO()
        writer = TelemetryWriter(sink, source=registry, worker="idle")
        writer.close()
        lines = sink.getvalue().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["type"] == "meta"
