"""Tests for repro.obs.provenance: the derivation DAG, the independent
verifier, the explain drivers, and the acceptance suite -- every
randomly generated inconsistent state yields a verified empty-clause
derivation."""

import json
import random

import pytest

from repro.errors import ClosureBudgetError, ProvenanceError
from repro.logic.clauses import ClauseSet, clause_of, make_literal
from repro.logic.propositions import Vocabulary
from repro.logic.resolution import resolution_closure, unit_resolve
from repro.logic.sat import is_satisfiable
from repro.obs import provenance

VOCAB = Vocabulary.standard(5)

EMPTY = frozenset()


@pytest.fixture(autouse=True)
def clean_provenance():
    provenance.disable()
    provenance.reset()
    yield
    provenance.disable()
    provenance.reset()


class TestRecorder:
    def test_ids_are_stable_and_first_derivation_wins(self):
        rec = provenance.DerivationRecorder()
        a = rec.record(frozenset({1}), "input")
        again = rec.record(frozenset({1}), "resolve", (a,), pivot=0)
        assert again == a
        assert rec.node(a).rule == "input"

    def test_parents_precede_children(self):
        rec = provenance.DerivationRecorder()
        a = rec.record(frozenset({1}), "input")
        b = rec.record(frozenset({-1}), "input")
        c = rec.record(EMPTY, "resolve", (a, b), pivot=0)
        assert a < c and b < c

    def test_derivation_is_the_ancestor_cone(self):
        rec = provenance.DerivationRecorder()
        a = rec.record(frozenset({1}), "input")
        rec.record(frozenset({2}), "input")  # unrelated
        b = rec.record(frozenset({-1}), "input")
        rec.record(EMPTY, "resolve", (a, b), pivot=0)
        steps = rec.derivation(EMPTY)
        assert [step.clause for step in steps] == [
            frozenset({1}),
            frozenset({-1}),
            EMPTY,
        ]

    def test_unrecorded_clause_has_no_derivation(self):
        assert provenance.DerivationRecorder().derivation(frozenset({9})) is None

    def test_recording_installs_and_restores(self):
        assert not provenance.is_enabled()
        outer = provenance.recorder()
        with provenance.recording() as rec:
            assert provenance.is_enabled()
            assert provenance.recorder() is rec
            assert rec is not outer
        assert not provenance.is_enabled()
        assert provenance.recorder() is outer


class TestJsonRoundTrip:
    def _steps(self):
        rec = provenance.DerivationRecorder()
        a = rec.record(frozenset({1, 2}), "input")
        b = rec.record(frozenset({-1}), "assumption")
        c = rec.record(frozenset({2}), "resolve", (a, b), pivot=0)
        rec.record(frozenset({-2}), "assumption")
        rec.record(EMPTY, "resolve", (c, 3), pivot=1)
        return rec.derivation(EMPTY)

    def test_round_trip_preserves_every_step(self):
        steps = self._steps()
        document = provenance.derivation_to_json(steps)
        assert provenance.derivation_from_json(json.loads(json.dumps(document))) == steps

    def test_schema_drift_is_refused(self):
        document = provenance.derivation_to_json(self._steps())
        document["schema"] = 99
        with pytest.raises(ProvenanceError):
            provenance.derivation_from_json(document)

    def test_malformed_step_is_refused(self):
        document = provenance.derivation_to_json(self._steps())
        del document["steps"][0]["clause"]
        with pytest.raises(ProvenanceError):
            provenance.derivation_from_json(document)

    def test_unknown_rule_is_refused(self):
        document = provenance.derivation_to_json(self._steps())
        document["steps"][0]["rule"] = "guess"
        with pytest.raises(ProvenanceError):
            provenance.derivation_from_json(document)


class TestVerifier:
    def test_valid_refutation_passes(self):
        rec = provenance.DerivationRecorder()
        a = rec.record(frozenset({1}), "input")
        b = rec.record(frozenset({-1}), "input")
        rec.record(EMPTY, "resolve", (a, b), pivot=0)
        steps = rec.derivation(EMPTY)
        assert provenance.verify_derivation(steps, target=EMPTY) == []

    def test_tampered_clause_is_caught(self):
        rec = provenance.DerivationRecorder()
        a = rec.record(frozenset({1, 2}), "input")
        b = rec.record(frozenset({-1}), "input")
        rec.record(frozenset({2}), "resolve", (a, b), pivot=0)
        steps = rec.derivation(frozenset({2}))
        forged = steps[:-1] + [
            provenance.DerivationNode(
                steps[-1].cid, frozenset({3}), "resolve", steps[-1].parents, 0
            )
        ]
        assert any("resolvent" in defect for defect in
                   provenance.verify_derivation(forged))

    def test_foreign_input_is_caught_against_axioms(self):
        rec = provenance.DerivationRecorder()
        rec.record(frozenset({1}), "input")
        steps = rec.derivation(frozenset({1}))
        assert provenance.verify_derivation(steps, axioms=[frozenset({2})])
        assert provenance.verify_derivation(steps, axioms=[frozenset({1})]) == []

    def test_forward_parent_reference_is_caught(self):
        steps = [provenance.DerivationNode(0, EMPTY, "resolve", (1, 2), 0)]
        assert provenance.verify_derivation(steps)

    def test_wrong_target_is_caught(self):
        rec = provenance.DerivationRecorder()
        rec.record(frozenset({1}), "input")
        steps = rec.derivation(frozenset({1}))
        assert provenance.verify_derivation(steps, target=EMPTY)


class TestKernelRecording:
    def test_disabled_kernels_record_nothing(self):
        before = len(provenance.recorder())
        cs = ClauseSet.from_strs(VOCAB, ["A1", "~A1 | A2"])
        resolution_closure(cs)
        assert len(provenance.recorder()) == before

    def test_saturation_records_resolvents(self):
        cs = ClauseSet.from_strs(VOCAB, ["A1 | A2", "~A1 | A3"])
        with provenance.recording() as rec:
            resolution_closure(cs)
            derived = rec.id_of(frozenset({2, 3}))
            assert derived is not None
            node = rec.node(derived)
        assert node.rule == "resolve"
        assert node.pivot == 0

    def test_unit_resolve_derivation_verifies(self):
        # unitres is single-pass: both units are given, not chained.
        cs = ClauseSet.from_strs(VOCAB, ["~A1 | A2", "~A2 | A3"])
        with provenance.recording() as rec:
            unit_resolve(cs, [1, 2])
            steps = rec.derivation(frozenset({3}))
        assert steps is not None
        assert provenance.verify_derivation(steps, target=frozenset({3})) == []
        assert any(step.rule == "given" for step in steps)

    def test_sat_solver_conflict_yields_verified_refutation(self):
        cs = ClauseSet.from_strs(VOCAB, ["A1", "~A1 | A2", "~A2"])
        with provenance.recording() as rec:
            assert not is_satisfiable(cs)
            steps = rec.derivation(EMPTY)
        assert steps is not None
        assert provenance.verify_derivation(steps, target=EMPTY) == []


class TestDisabledPathIsIdentical:
    def _workload_counters(self):
        from repro.hlu.session import IncompleteDatabase
        from repro.obs import core

        core.reset()
        core.enable()
        try:
            db = IncompleteDatabase.over(5)
            db.assert_("~A1 | A3", "A1 | A4", "A4 | A5")
            db.insert("A1 | A2")
            db.is_certain("A1 | A2")
            db.is_possible("~A3")
            db.canonical_clauses()
            return core.counters().snapshot()
        finally:
            core.disable()
            core.reset()

    def test_counters_bit_identical_after_enable_disable_cycle(self):
        from repro.hlu import audit

        baseline = self._workload_counters()
        # Cycle both provenance and audit on and off; the disabled hooks
        # must leave every kernel counter exactly as it was.
        provenance.enable()
        provenance.disable()
        audit.enable()
        audit.disable()
        assert self._workload_counters() == baseline


class TestBudget:
    def _blowup(self):
        import itertools

        clauses = [
            " | ".join(f"{'~' if s else ''}A{i + 1}" for i, s in enumerate(signs))
            for signs in itertools.product([0, 1], repeat=4)
        ]
        return ClauseSet.from_strs(VOCAB, clauses[:-1])

    def test_budget_error_carries_its_numbers(self):
        with pytest.raises(ClosureBudgetError) as info:
            resolution_closure(self._blowup(), max_clauses=10)
        assert info.value.budget == 10
        assert info.value.formed >= 1

    def test_budget_error_is_still_a_memory_error(self):
        # Back-compat: older call sites catch MemoryError.
        with pytest.raises(MemoryError):
            resolution_closure(self._blowup(), max_clauses=10)

    def test_prime_implicates_raises_the_dedicated_error(self):
        from repro.logic.implicates import prime_implicates

        with pytest.raises(ClosureBudgetError):
            prime_implicates(self._blowup(), max_clauses=10)


class TestExplainDrivers:
    def test_in_closure_finds_and_verifies(self):
        cs = ClauseSet.from_strs(VOCAB, ["A1 | A2", "~A1 | A3"])
        target = frozenset({2, 3})
        steps = provenance.explain_in_closure(cs, target)
        assert steps is not None
        assert provenance.verify_derivation(
            steps, target=target, axioms=cs.clauses
        ) == []

    def test_in_closure_returns_none_for_underivable(self):
        cs = ClauseSet.from_strs(VOCAB, ["A1 | A2"])
        assert provenance.explain_in_closure(cs, frozenset({3})) is None

    def test_entailment_is_a_refutation_with_assumptions(self):
        cs = ClauseSet.from_strs(VOCAB, ["A1 | A2", "~A2 | A1"])
        steps = provenance.explain_entailment(cs, frozenset({1}))
        assert steps is not None
        assert steps[-1].clause == EMPTY
        assert any(step.rule == "assumption" for step in steps)
        assert provenance.verify_derivation(
            steps, target=EMPTY, axioms=cs.clauses
        ) == []

    def test_entailment_returns_none_when_not_entailed(self):
        cs = ClauseSet.from_strs(VOCAB, ["A1 | A2"])
        assert provenance.explain_entailment(cs, frozenset({1})) is None

    def test_inconsistency_none_on_satisfiable_state(self):
        cs = ClauseSet.from_strs(VOCAB, ["A1 | A2", "~A1 | A3"])
        assert provenance.explain_inconsistency(cs) is None

    def test_drivers_leave_the_flag_off(self):
        cs = ClauseSet.from_strs(VOCAB, ["A1", "~A1"])
        assert provenance.explain_inconsistency(cs) is not None
        assert not provenance.is_enabled()

    def test_render_mentions_rule_and_pivot(self):
        cs = ClauseSet.from_strs(VOCAB, ["A1", "~A1"])
        steps = provenance.explain_inconsistency(cs)
        text = provenance.render_derivation(steps, VOCAB)
        assert "resolve" in text and "on A1" in text


class TestRandomizedAcceptance:
    """The acceptance criterion: across 200+ randomized cases, every
    inconsistent update yields an empty-clause derivation that the
    independent verifier accepts, and every consistent one yields none
    (cross-checked against the DPLL solver)."""

    CASES = 240

    def _random_clause_set(self, rng):
        letters = rng.randint(3, 5)
        vocabulary = Vocabulary.standard(letters)
        clauses = []
        for _ in range(rng.randint(2, 2 * letters + 2)):
            width = rng.randint(1, min(3, letters))
            chosen = rng.sample(range(letters), width)
            clauses.append(
                clause_of(make_literal(i, rng.random() < 0.5) for i in chosen)
            )
        return ClauseSet(vocabulary, frozenset(clauses))

    def test_every_inconsistency_is_explained_and_verified(self):
        rng = random.Random(1987)
        inconsistent = 0
        for _ in range(self.CASES):
            cs = self._random_clause_set(rng)
            satisfiable = is_satisfiable(cs)
            steps = provenance.explain_inconsistency(cs)
            if satisfiable:
                assert steps is None
                continue
            inconsistent += 1
            assert steps is not None, f"unsat state not explained: {cs}"
            defects = provenance.verify_derivation(
                steps, target=EMPTY, axioms=cs.clauses
            )
            assert defects == [], f"{cs}: {defects}"
        # The generator must actually exercise the interesting branch.
        assert inconsistent >= 60

    def test_inconsistent_session_updates_are_explained(self):
        from repro.hlu.session import IncompleteDatabase

        rng = random.Random(315)
        explained = 0
        for _ in range(40):
            db = IncompleteDatabase.over(4)
            for _ in range(rng.randint(3, 9)):
                width = rng.choice((1, 1, 2, 3))
                chosen = rng.sample(range(4), width)
                text = " | ".join(
                    f"{'~' if rng.random() < 0.5 else ''}A{i + 1}" for i in chosen
                )
                db.assert_(text)
                if not db.is_consistent():
                    steps = provenance.explain_inconsistency(db.clauses())
                    assert steps is not None
                    assert provenance.verify_derivation(
                        steps, target=EMPTY, axioms=db.clauses().clauses
                    ) == []
                    explained += 1
                    break
        assert explained >= 10
