"""Tests for the run-record model (repro.obs.metrics)."""

import json
import math

import pytest

from repro.bench.harness import Report, Timing
from repro.errors import MetricsError, MetricsVersionError
from repro.obs import metrics


def make_report(ident="E1", **overrides) -> Report:
    report = Report(
        ident=ident,
        title=f"experiment {ident}",
        claim="claims scale",
        columns=("size", "value"),
    )
    report.holds = overrides.get("holds", True)
    report.counters = overrides.get("counters", {"blu.c.assert.calls": 3})
    report.metrics = overrides.get("metrics", {"loglog_slope": 1.02})
    report.memory = overrides.get("memory")
    return report


def make_record(**report_overrides) -> metrics.RunRecord:
    return metrics.record_from_reports(
        [(make_report(**report_overrides), Timing([0.25, 0.2, 0.3]))],
        git_sha="deadbeef",
    )


class TestTimingJson:
    def test_schema_keys_pinned(self):
        # The exact key set of the timing object inside BENCH_*.json.
        data = Timing([0.2, 0.1, 0.4]).to_json()
        assert set(data) == {
            "best", "median", "mean", "min", "max", "stddev",
            "repeats", "samples",
        }

    def test_round_trip_preserves_samples_and_stats(self):
        original = Timing([0.2, 0.1, 0.4])
        restored = Timing.from_json(
            json.loads(json.dumps(original.to_json()))
        )
        assert restored.samples == original.samples
        assert restored == original  # float value: the best repeat
        assert restored.median == original.median
        assert restored.stddev == original.stddev

    def test_from_json_requires_samples(self):
        with pytest.raises(ValueError, match="samples"):
            Timing.from_json({"best": 0.2})

    def test_stats(self):
        timing = Timing([0.3, 0.1, 0.2])
        assert timing == pytest.approx(0.1)  # behaves as its best
        assert timing.best == pytest.approx(0.1)
        assert timing.minimum == pytest.approx(0.1)
        assert timing.maximum == pytest.approx(0.3)
        assert timing.median == pytest.approx(0.2)
        assert timing.mean == pytest.approx(0.2)
        assert timing.stddev == pytest.approx(math.sqrt(2 / 300))

    def test_even_sample_count_median(self):
        assert Timing([1.0, 2.0, 3.0, 10.0]).median == pytest.approx(2.5)

    def test_single_sample(self):
        timing = Timing([0.5])
        assert timing.stddev == 0.0
        assert timing.median == 0.5

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            Timing([])


class TestRecordBuilding:
    def test_record_from_reports(self):
        record = make_record()
        assert record.schema_version == metrics.SCHEMA_VERSION
        assert record.git_sha == "deadbeef"
        assert record.idents == ["E1"]
        exp = record.experiment("E1")
        assert exp.counters == {"blu.c.assert.calls": 3}
        assert exp.fits == {"loglog_slope": 1.02}
        assert exp.median_seconds == pytest.approx(0.25)
        assert exp.best_seconds == pytest.approx(0.2)

    def test_fingerprint_has_environment_identity(self):
        fingerprint = metrics.machine_fingerprint()
        assert fingerprint["python"]
        assert fingerprint["platform"]
        assert "cpu_count" in fingerprint

    def test_git_sha_detected_in_repo(self):
        # The test suite runs inside the repo checkout.
        sha = metrics.current_git_sha()
        assert sha is None or (len(sha) == 40 and set(sha) <= set("0123456789abcdef"))

    def test_plain_float_seconds_become_single_sample(self):
        record = metrics.record_from_reports(
            [(make_report(), 0.5)], git_sha=None
        )
        seconds = record.experiment("E1").seconds
        assert seconds["samples"] == [0.5]
        assert seconds["repeats"] == 1


class TestJsonRoundTrip:
    def test_round_trip(self):
        record = make_record()
        data = json.loads(json.dumps(metrics.run_record_to_json(record)))
        restored = metrics.run_record_from_json(data)
        assert restored.schema_version == record.schema_version
        assert restored.git_sha == record.git_sha
        assert restored.experiment("E1").counters == {"blu.c.assert.calls": 3}
        assert restored.experiment("E1").fits == {"loglog_slope": 1.02}
        assert restored.experiment("E1").median_seconds == pytest.approx(0.25)

    def test_empty_record_round_trips(self):
        record = metrics.record_from_reports([], git_sha=None)
        restored = metrics.run_record_from_json(
            json.loads(json.dumps(metrics.run_record_to_json(record)))
        )
        assert restored.experiments == []

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -float("inf")])
    def test_non_finite_fits_serialize_as_null_with_warning(self, bad):
        record = make_record(metrics={"exp_base": bad})
        with pytest.warns(UserWarning, match="non-finite"):
            data = metrics.run_record_to_json(record)
        assert data["experiments"][0]["fits"]["exp_base"] is None
        restored = metrics.run_record_from_json(data)
        assert restored.experiment("E1").fits["exp_base"] is None

    def test_schema_version_mismatch_rejected_with_clear_error(self):
        data = metrics.run_record_to_json(make_record())
        data["schema_version"] = metrics.SCHEMA_VERSION + 1
        with pytest.raises(MetricsError, match="schema_version"):
            metrics.run_record_from_json(data)

    def test_future_schema_raises_dedicated_version_error(self):
        data = metrics.run_record_to_json(make_record())
        data["schema_version"] = 99
        with pytest.raises(MetricsVersionError, match="schema_version 99"):
            metrics.run_record_from_json(data)

    def test_memory_round_trips(self):
        record = make_record(memory={"current_bytes": 1024, "peak_bytes": 4096})
        data = json.loads(json.dumps(metrics.run_record_to_json(record)))
        assert data["experiments"][0]["memory"] == {
            "current_bytes": 1024,
            "peak_bytes": 4096,
        }
        restored = metrics.run_record_from_json(data)
        assert restored.experiment("E1").memory == {
            "current_bytes": 1024,
            "peak_bytes": 4096,
        }

    def test_memory_defaults_to_null(self):
        data = metrics.run_record_to_json(make_record())
        assert data["experiments"][0]["memory"] is None
        restored = metrics.run_record_from_json(data)
        assert restored.experiment("E1").memory is None

    def test_schema_v1_record_loads_with_no_memory(self):
        data = metrics.run_record_to_json(make_record())
        data["schema_version"] = 1
        for experiment in data["experiments"]:
            del experiment["memory"]  # the key did not exist in v1
        restored = metrics.run_record_from_json(data)
        assert restored.schema_version == 1
        assert restored.experiment("E1").memory is None

    def test_memory_with_wrong_keys_rejected(self):
        data = metrics.run_record_to_json(
            make_record(memory={"current_bytes": 1, "peak_bytes": 2})
        )
        data["experiments"][0]["memory"] = {"peak_bytes": 2}
        with pytest.raises(MetricsError, match="memory"):
            metrics.run_record_from_json(data)

    def test_memory_with_non_int_bytes_rejected(self):
        data = metrics.run_record_to_json(
            make_record(memory={"current_bytes": 1, "peak_bytes": 2})
        )
        data["experiments"][0]["memory"]["peak_bytes"] = "big"
        with pytest.raises(MetricsError, match="int byte count"):
            metrics.run_record_from_json(data)

    def test_missing_key_reported(self):
        data = metrics.run_record_to_json(make_record())
        del data["experiments"][0]["counters"]
        with pytest.raises(MetricsError, match="counters"):
            metrics.run_record_from_json(data)

    def test_bad_counter_type_reported(self):
        data = metrics.run_record_to_json(make_record())
        data["experiments"][0]["counters"]["x"] = "three"
        with pytest.raises(MetricsError, match="str -> int"):
            metrics.run_record_from_json(data)

    def test_duplicate_ident_rejected(self):
        data = metrics.run_record_to_json(make_record())
        data["experiments"].append(dict(data["experiments"][0]))
        with pytest.raises(MetricsError, match="duplicate"):
            metrics.run_record_from_json(data)

    def test_non_object_rejected(self):
        with pytest.raises(MetricsError, match="object"):
            metrics.run_record_from_json([1, 2, 3])


class TestFiles:
    def test_write_and_read_round_trip(self, tmp_path):
        record = make_record()
        path = metrics.write_run_record(record, tmp_path / "BENCH_x.json")
        restored = metrics.read_run_record(path)
        assert restored.experiment("E1").counters == {"blu.c.assert.calls": 3}

    def test_write_is_atomic_no_tmp_left_behind(self, tmp_path):
        metrics.write_run_record(make_record(), tmp_path / "BENCH_x.json")
        leftovers = [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []

    def test_read_missing_file_is_metrics_error(self, tmp_path):
        with pytest.raises(MetricsError, match="cannot read"):
            metrics.read_run_record(tmp_path / "nope.json")

    def test_read_invalid_json_is_metrics_error(self, tmp_path):
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text("{not json")
        with pytest.raises(MetricsError, match="not valid JSON"):
            metrics.read_run_record(bad)

    def test_bench_filename_shape(self):
        name = metrics.bench_filename()
        assert name.startswith(metrics.BENCH_PREFIX)
        assert name.endswith(".json")

    def test_latest_bench_file_orders_by_timestamp(self, tmp_path):
        older = tmp_path / "BENCH_20260101_000000.json"
        newer = tmp_path / "BENCH_20260801_120000.json"
        # Write newer first so mtimes cannot be what orders them.
        metrics.write_run_record(make_record(), newer)
        metrics.write_run_record(make_record(), older)
        assert metrics.latest_bench_file(tmp_path) == newer
        assert metrics.find_bench_files(tmp_path) == [older, newer]

    def test_latest_bench_file_empty_directory(self, tmp_path):
        assert metrics.latest_bench_file(tmp_path) is None
        assert metrics.latest_bench_file(tmp_path / "missing") is None


class TestSummary:
    def test_summary_report_renders(self):
        record = make_record()
        text = metrics.summary_report(record, source="x.json").render()
        assert "E1" in text
        assert "holds" in text
        assert "deadbeef" in text

    def test_summary_of_empty_record(self):
        record = metrics.record_from_reports([], git_sha=None)
        text = metrics.summary_report(record).render()
        assert "0 experiment(s)" in text

    def test_summary_marks_divergence_and_null_fits(self):
        report = make_report(holds=False, metrics={"slope": None})
        record = metrics.record_from_reports([(report, 0.1)], git_sha=None)
        text = metrics.summary_report(record).render()
        assert "DIVERGES" in text
        assert "slope=null" in text

    def test_summary_shows_peak_memory_when_tracked(self):
        with_mem = make_record(
            memory={"current_bytes": 0, "peak_bytes": 3 * 1024 * 1024}
        )
        assert "3.0MB" in metrics.summary_report(with_mem).render()
        without = metrics.summary_report(make_record()).render()
        assert "MB" not in without
