"""Tests for the trace-analysis layer: repro.obs.profile + repro.obs.report."""

import json
import math

from repro.obs import core
from repro.obs.export import export_jsonl
from repro.obs.profile import (
    folded_stacks,
    profile_from_jsonl,
    profile_spans,
    speedscope_document,
)
from repro.obs.report import hotspot_report


def make_span(name, start, elapsed, children=(), **attributes):
    return core.Span(
        name=name,
        attributes=dict(attributes),
        start=start,
        elapsed=elapsed,
        children=list(children),
    )


def sample_forest():
    """One root (10s) with two kernels under it: 4s + 3s, so 3s of self."""
    kernel_a = make_span("logic.kernel", 0.5, 4.0, clauses_in=10)
    kernel_b = make_span("logic.kernel", 5.0, 3.0, clauses_in=6)
    root = make_span("blu.op", 0.0, 10.0, [kernel_a, kernel_b], update="insert")
    return [root]


class TestProfileSpans:
    def test_self_time_is_total_minus_children(self):
        profile = profile_spans(sample_forest())
        op = profile.entries["blu.op"]
        assert op.calls == 1
        assert op.total == 10.0
        assert op.self_time == 3.0

    def test_leaf_self_equals_total_and_calls_aggregate(self):
        profile = profile_spans(sample_forest())
        kernel = profile.entries["logic.kernel"]
        assert kernel.calls == 2
        assert kernel.total == 7.0
        assert kernel.self_time == 7.0
        assert kernel.mean_self == 3.5

    def test_self_times_sum_to_wall(self):
        profile = profile_spans(sample_forest())
        assert profile.wall == 10.0
        assert profile.total_self == 10.0
        assert profile.spans == 3

    def test_recursive_nesting_double_counts_total_not_self(self):
        inner = make_span("rec", 1.0, 4.0)
        outer = make_span("rec", 0.0, 10.0, [inner])
        profile = profile_spans([outer])
        entry = profile.entries["rec"]
        assert entry.calls == 2
        assert entry.total == 14.0  # elapsed counted at every level
        assert entry.self_time == 10.0  # == the forest's wall time
        assert profile.total_self == profile.wall

    def test_negative_self_time_clamped_to_zero(self):
        # Child clock overshoots the parent's by timer granularity.
        child = make_span("child", 0.0, 1.5)
        parent = make_span("parent", 0.0, 1.0, [child])
        profile = profile_spans([parent])
        assert profile.entries["parent"].self_time == 0.0

    def test_numeric_attributes_rolled_up(self):
        profile = profile_spans(sample_forest())
        kernel = profile.entries["logic.kernel"]
        assert kernel.attributes == {"clauses_in": 16}

    def test_non_numeric_and_bool_attributes_skipped(self):
        span = make_span("s", 0.0, 1.0, label="x", cached=True, size=2)
        profile = profile_spans([span])
        assert profile.entries["s"].attributes == {"size": 2}

    def test_sorted_by_self_and_top(self):
        profile = profile_spans(sample_forest())
        names = [entry.name for entry in profile.sorted_by_self()]
        assert names == ["logic.kernel", "blu.op"]
        assert [e.name for e in profile.top(1)] == ["logic.kernel"]
        assert profile.top(0) == []

    def test_accepts_live_tracer(self):
        core.enable()
        with core.span("outer"):
            with core.span("inner"):
                pass
        profile = profile_spans(core.tracer())
        assert set(profile.entries) == {"outer", "inner"}

    def test_per_call_quantiles_from_histogram(self):
        profile = profile_spans(sample_forest())
        kernel = profile.entries["logic.kernel"]
        assert kernel.self_times.count == 2
        assert kernel.self_times.minimum == 3.0
        assert kernel.self_times.maximum == 4.0
        assert 3.0 <= kernel.self_times.p50 <= 4.0

    def test_empty_forest(self):
        profile = profile_spans([])
        assert profile.entries == {}
        assert profile.wall == 0.0
        assert profile.total_self == 0.0


class TestProfileFromJsonl:
    def test_matches_in_memory_profile(self):
        forest = sample_forest()
        direct = profile_spans(forest)
        restored = profile_from_jsonl(export_jsonl(forest))
        assert set(restored.entries) == set(direct.entries)
        for name, entry in restored.entries.items():
            assert entry.calls == direct.entries[name].calls
            assert entry.total == direct.entries[name].total
            assert entry.self_time == direct.entries[name].self_time
        assert restored.wall == direct.wall


class TestFoldedStacks:
    def test_lines_are_path_and_microsecond_weight(self):
        text = folded_stacks(sample_forest())
        lines = text.splitlines()
        assert "blu.op 3000000" in lines
        assert "blu.op;logic.kernel 7000000" in lines
        assert len(lines) == 2  # identical paths merge

    def test_every_line_parses(self):
        for line in folded_stacks(sample_forest()).splitlines():
            stack, _, weight = line.rpartition(" ")
            assert stack
            assert int(weight) >= 0

    def test_semicolons_in_names_escaped(self):
        span = make_span("a;b", 0.0, 1.0)
        assert folded_stacks([span]).startswith("a:b ")

    def test_empty_forest_is_empty_text(self):
        assert folded_stacks([]) == ""


class TestSpeedscope:
    def test_document_shape(self):
        doc = speedscope_document(sample_forest(), name="t")
        assert doc["$schema"] == "https://www.speedscope.app/file-format-schema.json"
        assert [f["name"] for f in doc["shared"]["frames"]] == [
            "blu.op",
            "logic.kernel",
        ]
        profile = doc["profiles"][0]
        assert profile["type"] == "evented"
        assert profile["unit"] == "seconds"
        assert profile["startValue"] == 0

    def test_events_monotone_and_balanced(self):
        doc = speedscope_document(sample_forest())
        events = doc["profiles"][0]["events"]
        last = -math.inf
        depth = 0
        for event in events:
            assert event["at"] >= last
            last = event["at"]
            depth += 1 if event["type"] == "O" else -1
            assert depth >= 0
        assert depth == 0
        assert doc["profiles"][0]["endValue"] == last

    def test_overlong_child_clamped_inside_parent(self):
        child = make_span("child", 0.0, 5.0)  # outlives its parent
        parent = make_span("parent", 0.0, 1.0, [child])
        events = speedscope_document([parent])["profiles"][0]["events"]
        closes = {e["frame"]: e["at"] for e in events if e["type"] == "C"}
        frames = speedscope_document([parent])["shared"]["frames"]
        names = [f["name"] for f in frames]
        assert closes[names.index("child")] <= closes[names.index("parent")]

    def test_json_serializable(self):
        json.dumps(speedscope_document(sample_forest()))


class TestHotspotReport:
    def test_rows_sorted_by_self_time(self):
        report = hotspot_report(profile_spans(sample_forest()))
        assert [row[0] for row in report.rows] == ["logic.kernel", "blu.op"]
        assert "top self time: logic.kernel" in report.observed

    def test_accepts_tracer_and_raw_forest(self):
        core.enable()
        with core.span("only"):
            pass
        assert hotspot_report(core.tracer()).rows[0][0] == "only"
        assert hotspot_report(sample_forest()).rows[0][0] == "logic.kernel"

    def test_limit_hides_cooler_names(self):
        report = hotspot_report(profile_spans(sample_forest()), limit=1)
        assert len(report.rows) == 1
        assert "1 cooler name(s) not shown" in report.observed

    def test_self_share_column(self):
        report = hotspot_report(profile_spans(sample_forest()))
        shares = {row[0]: row[4] for row in report.rows}
        assert shares["logic.kernel"] == "70.0%"
        assert shares["blu.op"] == "30.0%"

    def test_empty_profile_renders(self):
        report = hotspot_report(profile_spans([]))
        assert report.rows == []
        assert "0 span(s)" in report.observed
        assert report.render()  # table renders without data rows
