"""Tests for repro.obs.runtime: windowed metrics, feeds, and exposition."""

import io
import json
import random
import re
import threading

import pytest

from repro.obs import runtime
from repro.obs.core import Histogram


class FakeClock:
    """An injectable clock the tests advance by hand."""

    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> float:
        self.now += seconds
        return self.now


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def registry(clock):
    return runtime.MetricsRegistry(window_seconds=10.0, slots=5, clock=clock)


class TestRateMeter:
    def test_total_is_monotonic(self):
        meter = runtime.RateMeter(window_seconds=10.0, slots=5)
        seen = []
        for step in range(50):
            meter.tick(1, now=step * 0.7)
            seen.append(meter.total)
        assert seen == sorted(seen)
        assert meter.total == 50

    def test_rate_reflects_only_the_window(self):
        meter = runtime.RateMeter(window_seconds=10.0, slots=5)
        for i in range(100):
            meter.tick(1, now=float(i) * 0.1)  # 100 events in the first 10s
        # 60 seconds later the window is empty; the total is not.
        assert meter.rate(now=70.0) == 0.0
        assert meter.total == 100

    def test_rate_is_events_per_covered_second(self):
        meter = runtime.RateMeter(window_seconds=10.0, slots=5)
        for i in range(20):
            meter.tick(1, now=float(i) * 0.5)  # 2 events/s for 10s
        assert meter.rate(now=10.0) == pytest.approx(2.0, rel=0.1)

    def test_zero_covered_time_reports_zero(self):
        meter = runtime.RateMeter(window_seconds=10.0, slots=5)
        assert meter.rate(now=0.0) == 0.0

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            runtime.RateMeter(window_seconds=0.0)
        with pytest.raises(ValueError):
            runtime.RateMeter(slots=0)


class TestWindowedHistogram:
    def test_window_matches_brute_force_per_slot(self):
        """The windowed quantiles must equal a plain Histogram built from
        exactly the observations whose slots are still live."""
        rng = random.Random(0x5EED)
        windowed = runtime.WindowedHistogram(window_seconds=10.0, slots=5)
        observations = []  # (slot_index, value)
        for step in range(400):
            now = step * 0.25  # 8 observations per 2s slot
            value = rng.lognormvariate(0.0, 2.0)
            windowed.observe(value, now=now)
            observations.append((int(now // 2.0), value))
        now = 400 * 0.25
        merged = windowed.window(now=now)
        # Live slots: the current slot plus the 5 most recent closed ones.
        current_slot = int(now // 2.0)
        brute = Histogram()
        for slot, value in observations:
            if slot >= current_slot - 5:
                brute.observe(value)
        assert merged.count == brute.count
        assert merged.buckets == brute.buckets
        assert merged.p50 == brute.p50
        assert merged.p90 == brute.p90
        assert merged.p99 == brute.p99

    def test_old_observations_age_out(self):
        windowed = runtime.WindowedHistogram(window_seconds=10.0, slots=5)
        windowed.observe(100.0, now=0.0)
        windowed.observe(1.0, now=60.0)
        window = windowed.window(now=60.0)
        assert window.count == 1
        assert window.maximum == 1.0
        assert windowed.cumulative.count == 2
        assert windowed.cumulative.maximum == 100.0

    def test_idle_gap_does_not_overfill_ring(self):
        windowed = runtime.WindowedHistogram(window_seconds=10.0, slots=5)
        windowed.observe(1.0, now=0.0)
        windowed.observe(2.0, now=1e6)  # huge gap: only maxlen slots kept
        assert windowed.window(now=1e6).count == 1


class TestMetricsRegistry:
    def test_snapshot_shape(self, registry, clock):
        registry.count("events", 3)
        registry.set_gauge("rss", 12.5)
        registry.tick("ops")
        registry.observe("ops.seconds", 0.25)
        clock.advance(1.0)
        snap = registry.snapshot()
        assert snap["type"] == "snapshot"
        assert snap["seq"] == 1
        assert snap["uptime"] == pytest.approx(1.0)
        assert snap["counters"] == {"events": 3}
        assert snap["gauges"] == {"rss": 12.5}
        assert snap["meters"]["ops"]["count"] == 1
        hist = snap["histograms"]["ops.seconds"]
        assert hist["count"] == 1
        assert hist["window"]["count"] == 1
        assert json.loads(json.dumps(snap)) == snap  # JSON-safe

    def test_record_op_pairs_meter_with_seconds_histogram(self, registry):
        registry.record_op("hlu.update", 0.004)
        snap = registry.snapshot()
        assert snap["meters"]["hlu.update"]["count"] == 1
        assert snap["histograms"]["hlu.update.seconds"]["count"] == 1

    def test_seq_increments_per_snapshot(self, registry):
        assert registry.snapshot()["seq"] == 1
        assert registry.snapshot()["seq"] == 2

    def test_reset_drops_everything(self, registry):
        registry.count("x")
        registry.record_op("op", 0.1)
        registry.reset()
        snap = registry.snapshot()
        assert snap["counters"] == {}
        assert snap["meters"] == {}
        assert snap["histograms"] == {}
        assert snap["seq"] == 1

    def test_concurrent_recording_is_consistent(self, registry):
        def hammer():
            for _ in range(1000):
                registry.count("hits")
                registry.record_op("op", 0.001)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        snap = registry.snapshot()
        assert snap["counters"]["hits"] == 4000
        assert snap["meters"]["op"]["count"] == 4000
        assert snap["histograms"]["op.seconds"]["count"] == 4000


class TestModuleHooks:
    def test_disabled_hooks_record_nothing(self):
        assert not runtime.is_enabled()
        runtime.count("x")
        runtime.observe("h", 1.0)
        runtime.set_gauge("g", 2.0)
        runtime.record_op("op", 0.1)
        with runtime.timed("op"):
            pass
        snap = runtime.registry().snapshot()
        assert snap["counters"] == {}
        assert snap["meters"] == {}
        assert snap["histograms"] == {}
        assert snap["gauges"] == {}

    def test_disabled_timed_returns_shared_null_timer(self):
        assert runtime.timed("a") is runtime.timed("b")

    def test_enabled_hooks_record(self):
        runtime.enable()
        runtime.count("x", 2)
        with runtime.timed("op"):
            pass
        snap = runtime.registry().snapshot()
        assert snap["counters"] == {"x": 2}
        assert snap["meters"]["op"]["count"] == 1
        assert snap["histograms"]["op.seconds"]["count"] == 1

    def test_set_registry_swaps(self, registry):
        previous = runtime.set_registry(registry)
        try:
            runtime.enable()
            runtime.count("swapped")
            assert registry.snapshot()["counters"] == {"swapped": 1}
        finally:
            runtime.set_registry(previous)


class TestMergeSnapshots:
    def test_exact_histogram_merge_not_average_of_averages(self, clock):
        left = runtime.MetricsRegistry(clock=clock)
        right = runtime.MetricsRegistry(clock=clock)
        values_left = [0.001] * 99 + [10.0]
        values_right = [10.0] * 100
        for value in values_left:
            left.observe("op.seconds", value)
        for value in values_right:
            right.observe("op.seconds", value)
        merged = runtime.merge_snapshots([left.snapshot(), right.snapshot()])
        single = Histogram()
        for value in values_left + values_right:
            single.observe(value)
        hist = merged["histograms"]["op.seconds"]
        assert hist["count"] == 200
        assert hist["p50"] == single.p50
        assert hist["p99"] == single.p99

    def test_counters_meters_gauges_sum(self, clock):
        left = runtime.MetricsRegistry(clock=clock)
        right = runtime.MetricsRegistry(clock=clock)
        left.count("cache.hits", 3)
        right.count("cache.hits", 4)
        right.count("only_right")
        left.set_gauge("proc.rss_bytes", 100.0)
        right.set_gauge("proc.rss_bytes", 50.0)
        left.tick("ops", 5)
        right.tick("ops", 7)
        merged = runtime.merge_snapshots([left.snapshot(), right.snapshot()])
        assert merged["counters"] == {"cache.hits": 7, "only_right": 1}
        assert merged["gauges"] == {"proc.rss_bytes": 150.0}
        assert merged["meters"]["ops"]["count"] == 12

    def test_empty_input_gives_empty_snapshot(self):
        merged = runtime.merge_snapshots([])
        assert merged["counters"] == {}
        assert merged["histograms"] == {}


class TestPrometheusRendering:
    _SAMPLE = re.compile(
        r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9.eE+NaIninf]+)$"
    )

    def _parse(self, text):
        """A tiny text-exposition parser: returns {family: (type, [samples])}
        and asserts every sample line is well-formed and preceded by its
        family's HELP and TYPE comments."""
        families = {}
        helped, typed = set(), set()
        for line in text.splitlines():
            if line.startswith("# HELP "):
                helped.add(line.split()[2])
                continue
            if line.startswith("# TYPE "):
                _, _, family, kind = line.split(None, 3)
                typed.add(family)
                families[family] = (kind, [])
                continue
            match = self._SAMPLE.match(line)
            assert match, f"malformed sample line: {line!r}"
            name = match.group(1)
            family = next(
                (f for f in families if name == f or name.startswith(f + "_")), None
            )
            assert family is not None, f"sample {name!r} has no TYPE comment"
            families[family][1].append(line)
        assert helped == typed, "every family needs both HELP and TYPE"
        return families

    def test_exposition_is_parseable_with_help_and_type(self, registry):
        registry.count("cache.hits", 9)
        registry.set_gauge("proc.rss_bytes", 1024.0)
        registry.record_op("hlu.update", 0.002)
        text = registry.render_prometheus()
        families = self._parse(text)
        assert families["repro_cache_hits_total"][0] == "counter"
        assert families["repro_proc_rss_bytes"][0] == "gauge"
        assert families["repro_hlu_update_ops_total"][0] == "counter"
        assert families["repro_hlu_update_ops_rate"][0] == "gauge"
        kind, samples = families["repro_hlu_update_seconds"]
        assert kind == "summary"
        assert any('quantile="0.5"' in line for line in samples)
        assert any(line.startswith("repro_hlu_update_seconds_sum ") for line in samples)
        assert any(
            line.startswith("repro_hlu_update_seconds_count ") for line in samples
        )

    def test_metric_names_are_sanitised(self, registry):
        registry.count("blu.c.assert", 1)
        text = registry.render_prometheus()
        assert "repro_blu_c_assert_total 1" in text

    def test_empty_registry_renders_empty(self, registry):
        assert registry.render_prometheus() == ""

    def test_module_level_render_uses_process_registry(self):
        runtime.enable()
        runtime.count("events", 2)
        assert "repro_events_total 2" in runtime.render_prometheus()


class TestFeed:
    def _feed(self, clock, worker="w1", counters=None):
        registry = runtime.MetricsRegistry(clock=clock)
        for name, value in (counters or {"cache.hits": 2}).items():
            registry.count(name, value)
        registry.record_op("hlu.update", 0.003)
        buffer = io.StringIO()
        writer = runtime.TelemetryWriter(buffer, source=registry, worker=worker)
        writer.write_snapshot()
        clock.advance(1.0)
        writer.write_snapshot()
        return buffer.getvalue()

    def test_writer_emits_meta_then_snapshots(self, clock):
        meta, snapshots = runtime.read_feed(self._feed(clock))
        assert meta["type"] == "meta"
        assert meta["schema"] == runtime.FEED_SCHEMA_VERSION
        assert meta["worker"] == "w1"
        assert [snap["seq"] for snap in snapshots] == [1, 2]
        assert all(snap["worker"] == "w1" for snap in snapshots)

    def test_feed_validates(self, clock):
        assert runtime.validate_feed(self._feed(clock)) == []

    def test_empty_text_is_valid(self):
        assert runtime.validate_feed("") == []

    def test_close_on_untouched_writer_still_writes_meta(self, tmp_path):
        path = tmp_path / "feed.jsonl"
        writer = runtime.TelemetryWriter(str(path))
        writer.close()
        meta, snapshots = runtime.read_feed(path.read_text())
        assert meta is not None
        assert snapshots == []

    def test_validate_rejects_bad_json(self):
        errors = runtime.validate_feed("{nope")
        assert errors and "not valid JSON" in errors[0]

    def test_validate_rejects_snapshot_before_meta(self, clock):
        text = self._feed(clock)
        lines = text.splitlines()
        errors = runtime.validate_feed("\n".join(lines[1:]))
        assert any("before any meta" in error for error in errors)

    def test_validate_rejects_unsupported_schema(self, clock):
        text = self._feed(clock)
        lines = text.splitlines()
        meta = json.loads(lines[0])
        meta["schema"] = 99
        lines[0] = json.dumps(meta)
        errors = runtime.validate_feed("\n".join(lines))
        assert any("unsupported feed schema" in error for error in errors)

    def test_validate_rejects_bucket_sum_mismatch(self, clock):
        text = self._feed(clock)
        lines = text.splitlines()
        snap = json.loads(lines[1])
        name, hist = next(iter(snap["histograms"].items()))
        hist["count"] += 5
        lines[1] = json.dumps(snap)
        errors = runtime.validate_feed("\n".join(lines))
        assert any("buckets sum" in error for error in errors)

    def test_validate_rejects_missing_window(self, clock):
        text = self._feed(clock)
        lines = text.splitlines()
        snap = json.loads(lines[1])
        for hist in snap["histograms"].values():
            hist.pop("window")
        lines[1] = json.dumps(snap)
        errors = runtime.validate_feed("\n".join(lines))
        assert any("missing window" in error for error in errors)

    def test_merge_feeds_round_trips(self, clock):
        feed_a = self._feed(clock, worker="E6", counters={"cache.hits": 2})
        feed_b = self._feed(clock, worker="E7", counters={"cache.hits": 5})
        merged = runtime.merge_feeds([feed_a, feed_b])
        assert runtime.validate_feed(merged) == []
        meta, snapshots = runtime.read_feed(merged)
        assert meta["workers"] == ["E6", "E7"]
        combined = snapshots[-1]
        assert combined["worker"] == "merged"
        assert combined["counters"]["cache.hits"] == 7
        assert combined["meters"]["hlu.update"]["count"] == 2

    def test_merge_feeds_of_nothing_is_still_a_valid_feed(self):
        merged = runtime.merge_feeds([])
        assert runtime.validate_feed(merged) == []


class TestPumpAndSampler:
    def test_sample_once_sets_process_gauges(self, registry):
        sampler = runtime.ResourceSampler(registry)
        sampler.sample_once()
        gauges = registry.snapshot()["gauges"]
        assert gauges.get("proc.rss_bytes", 0) > 0
        assert "gc.gen0_objects" in gauges
        assert "gc.collections" in gauges

    def test_pump_once_samples_then_snapshots(self, registry):
        buffer = io.StringIO()
        writer = runtime.TelemetryWriter(buffer, source=registry, worker="w")
        pump = runtime.TelemetryPump(
            writer, interval=3600.0, sampler=runtime.ResourceSampler(registry)
        )
        pump.pump_once()
        meta, snapshots = runtime.read_feed(buffer.getvalue())
        assert meta is not None
        assert len(snapshots) == 1
        assert snapshots[0]["gauges"].get("proc.rss_bytes", 0) > 0

    def test_pump_thread_stop_flushes_final_snapshot(self, registry):
        buffer = io.StringIO()
        writer = runtime.TelemetryWriter(buffer, source=registry, worker="w")
        pump = runtime.TelemetryPump(writer, interval=3600.0)
        pump.start()
        registry.count("late")
        pump.stop(final_snapshot=True)
        assert not pump.is_alive()
        _, snapshots = runtime.read_feed(buffer.getvalue())
        assert snapshots
        assert snapshots[-1]["counters"] == {"late": 1}
        assert runtime.validate_feed(buffer.getvalue()) == []
