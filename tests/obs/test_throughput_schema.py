"""Schema-v4 throughput block: round trip, validation, and comparison."""

import copy

import pytest

from repro.bench.harness import Timing
from repro.errors import MetricsError
from repro.obs import baseline as baseline_mod
from repro.obs import metrics as metrics_mod
from repro.obs.baseline import (
    Thresholds,
    classify_latency,
    classify_throughput,
    compare,
)


def _latency(scale: float) -> dict[str, float]:
    return {
        "mean": 0.002 * scale,
        "p50": 0.002 * scale,
        "p90": 0.004 * scale,
        "p99": 0.008 * scale,
        "max": 0.02 * scale,
    }


def _throughput(scale: float = 1.0) -> dict[str, object]:
    return {
        "duration_seconds": 10.0,
        "clients": 4,
        "scenario": "mixed",
        "total_ops": int(30_000 * scale),
        "errors": 0,
        "ops_per_second": 3_000.0 * scale,
        "operations": {
            "update": {
                "count": int(15_000 * scale),
                "errors": 0,
                "ops_per_second": 1_500.0 * scale,
                "latency_seconds": _latency(1.0 / scale),
            },
            "query": {
                "count": int(15_000 * scale),
                "errors": 0,
                "ops_per_second": 1_500.0 * scale,
                "latency_seconds": _latency(1.0 / scale),
            },
        },
    }


def _record(throughput: dict[str, object] | None) -> metrics_mod.RunRecord:
    return metrics_mod.RunRecord(
        schema_version=metrics_mod.SCHEMA_VERSION,
        created="2026-08-07T00:00:00Z",
        git_sha=None,
        fingerprint={"platform": "test"},
        experiments=[
            metrics_mod.ExperimentMetrics(
                ident="bench_srv_mixed",
                title="service throughput",
                holds=True,
                seconds=Timing([10.0]).to_json(),
                counters={"total_ops": 30_000, "errors": 0},
            )
        ],
        throughput=throughput,
    )


class TestRoundTrip:
    def test_v4_record_with_throughput_round_trips(self):
        record = _record(_throughput())
        data = metrics_mod.run_record_to_json(record)
        assert data["schema_version"] == 4
        back = metrics_mod.run_record_from_json(data)
        assert back.throughput == record.throughput

    def test_throughput_is_optional(self):
        record = _record(None)
        back = metrics_mod.run_record_from_json(
            metrics_mod.run_record_to_json(record)
        )
        assert back.throughput is None

    def test_extra_keys_pass_through(self):
        throughput = _throughput()
        throughput["read_fraction"] = 0.5
        throughput["seed"] = 7
        back = metrics_mod.run_record_from_json(
            metrics_mod.run_record_to_json(_record(throughput))
        )
        assert back.throughput["read_fraction"] == 0.5
        assert back.throughput["seed"] == 7


class TestValidation:
    def _reject(self, mutate) -> None:
        data = metrics_mod.run_record_to_json(_record(_throughput()))
        mutate(data["throughput"])
        with pytest.raises(MetricsError):
            metrics_mod.run_record_from_json(data)

    def test_rejects_missing_required_key(self):
        self._reject(lambda t: t.pop("scenario"))

    def test_rejects_negative_duration(self):
        self._reject(lambda t: t.update(duration_seconds=-1.0))

    def test_rejects_boolean_counts(self):
        self._reject(lambda t: t.update(total_ops=True))

    def test_rejects_incomplete_latency_block(self):
        def mutate(t):
            del t["operations"]["update"]["latency_seconds"]["p99"]

        self._reject(mutate)

    def test_rejects_non_mapping_operations(self):
        self._reject(lambda t: t.update(operations=[1, 2]))


class TestClassifiers:
    def test_throughput_lower_regresses_higher_improves(self):
        thresholds = Thresholds()
        assert classify_throughput(1000.0, 2000.0, thresholds)[0] == "regressed"
        assert classify_throughput(4000.0, 2000.0, thresholds)[0] == "improved"
        assert classify_throughput(1900.0, 2000.0, thresholds)[0] == "neutral"
        assert classify_throughput(0.0, 0.0, thresholds)[0] == "neutral"

    def test_latency_bands_widen_with_the_percentile(self):
        thresholds = Thresholds()
        # 1.9x is outside the p50 band (+75%) but inside the p99 one (+150%).
        assert classify_latency(0.0019, 0.001, "p50", thresholds)[0] == "regressed"
        assert classify_latency(0.0019, 0.001, "p99", thresholds)[0] == "neutral"

    def test_latency_floor_and_missing_values_are_neutral(self):
        thresholds = Thresholds()
        assert classify_latency(0.0001, 0.0002, "p50", thresholds)[0] == "neutral"
        assert classify_latency(None, 0.001, "p50", thresholds)[0] == "neutral"

    def test_unknown_percentile_raises(self):
        with pytest.raises(MetricsError):
            Thresholds().latency_rtol("p75")


class TestCompare:
    def test_v3_baseline_still_compares_against_a_v4_run(self):
        run = _record(_throughput())
        old = _record(None)
        old.schema_version = 3
        comparison = compare(run, old)
        # Throughput appears one-sided: reported as added, never gating.
        added = [d for d in comparison.deltas if d.kind == "throughput"]
        assert added and all(d.status == "added" for d in added)
        assert not comparison.regressions()

    def test_throughput_collapse_regresses_but_is_not_gated_by_default(self):
        run = _record(_throughput(scale=0.25))  # 4x slower, 4x latency
        base = _record(_throughput(scale=1.0))
        # Counters gate exactly, so align them before comparing.
        run.experiments[0].counters = dict(base.experiments[0].counters)
        comparison = compare(run, base)
        regressed = [d for d in comparison.deltas if d.is_regression]
        assert any(d.kind == "throughput" for d in regressed)
        assert not comparison.regressions()  # DEFAULT_GATE excludes throughput
        gated = comparison.regressions(frozenset({"throughput"}))
        assert gated
        metrics = {d.metric for d in gated}
        assert "ops_per_second" in metrics

    def test_scenario_mismatch_is_a_single_neutral_delta(self):
        run_throughput = _throughput()
        run_throughput["scenario"] = "stream"
        comparison = compare(_record(run_throughput), _record(_throughput()))
        deltas = [d for d in comparison.deltas if d.kind == "throughput"]
        assert len(deltas) == 1
        assert deltas[0].status == "neutral"
        assert "not compared" in deltas[0].detail

    def test_identical_throughput_is_all_neutral(self):
        record = _record(_throughput())
        comparison = compare(record, copy.deepcopy(record))
        deltas = [d for d in comparison.deltas if d.kind == "throughput"]
        assert deltas
        assert all(d.status == "neutral" for d in deltas)

    def test_default_gate_excludes_throughput(self):
        assert "throughput" in baseline_mod.METRIC_KINDS
        assert "throughput" not in baseline_mod.DEFAULT_GATE
