"""Tests for repro.obs.live: dashboard rendering, display modes, tailing."""

import io

import pytest

from repro.obs import live, runtime


def _snapshot(counters=None, ops=None, gauges=None):
    """A snapshot dict via a real registry, so shapes never drift."""
    registry = runtime.MetricsRegistry(clock=lambda: 1.0)
    for name, value in (counters or {}).items():
        registry.count(name, value)
    for name, seconds_list in (ops or {}).items():
        for seconds in seconds_list:
            registry.record_op(name, seconds)
    for name, value in (gauges or {}).items():
        registry.set_gauge(name, value)
    return registry.snapshot(now=2.0)


class TestDigests:
    def test_ops_per_second_sums_meters(self):
        snap = _snapshot(ops={"a": [0.001] * 4, "b": [0.001] * 2})
        total = snap["meters"]["a"]["rate"] + snap["meters"]["b"]["rate"]
        assert live.ops_per_second(snap) == pytest.approx(total)
        assert live.ops_per_second(None) == 0.0

    def test_latency_quantiles_merge_only_seconds_histograms(self):
        snap = _snapshot(ops={"a": [0.004] * 10})
        registry_other = runtime.MetricsRegistry(clock=lambda: 1.0)
        registry_other.observe("clauses.retained", 500.0)  # not *.seconds
        merged = dict(snap)
        merged["histograms"] = {
            **snap["histograms"],
            **registry_other.snapshot(now=2.0)["histograms"],
        }
        p50, p99 = live.latency_quantiles(merged)
        assert p50 is not None and p50 < 1.0  # seconds-scale, not clause-scale
        assert p99 is not None and p99 < 1.0

    def test_latency_quantiles_none_when_no_data(self):
        assert live.latency_quantiles(None) == (None, None)
        assert live.latency_quantiles(_snapshot()) == (None, None)

    def test_cache_hit_rate(self):
        snap = _snapshot(counters={"cache.hits": 3, "cache.misses": 1})
        assert live.cache_hit_rate(snap) == 0.75
        assert live.cache_hit_rate(_snapshot()) is None
        assert live.cache_hit_rate(None) is None


class TestRenderDashboard:
    def _model(self):
        model = live.DashboardModel(title="test run")
        view = model.worker("E6")
        view.status = "done"
        view.snapshot = _snapshot(
            counters={"cache.hits": 1, "cache.misses": 1},
            ops={"hlu.update": [0.002] * 5},
        )
        model.worker("E7").status = "running"
        return model

    def test_renders_worker_rows_and_total(self):
        text = live.render_dashboard(self._model())
        lines = text.splitlines()
        assert "test run" in lines[0]
        assert any(line.startswith("E6") and "ok" in line for line in lines)
        assert any(line.startswith("E7") and ">" in line for line in lines)
        total = next(line for line in lines if line.startswith("TOTAL"))
        assert "1/2" in total
        assert "50%" in total

    def test_rss_line_when_gauge_present(self):
        model = live.DashboardModel()
        model.worker("w").snapshot = _snapshot(
            gauges={"proc.rss_bytes": 32 * 1024 * 1024.0}
        )
        assert "rss 32.0MB" in live.render_dashboard(model)

    def test_merged_snapshot_sums_workers(self):
        model = live.DashboardModel()
        model.worker("a").snapshot = _snapshot(counters={"cache.hits": 2})
        model.worker("b").snapshot = _snapshot(counters={"cache.hits": 3})
        merged = model.merged_snapshot()
        assert merged["counters"]["cache.hits"] == 5


class TestRenderWatch:
    def test_empty_snapshot_says_so(self):
        assert live.render_watch(None) == "(no telemetry recorded yet)"
        assert live.render_watch(_snapshot()) == "(no telemetry recorded yet)"

    def test_ops_table_pairs_meter_with_seconds(self):
        text = live.render_watch(_snapshot(ops={"hlu.update": [0.002, 0.004]}))
        assert "hlu.update" in text
        row = next(line for line in text.splitlines() if "hlu.update" in line)
        assert " 2 " in row  # count column
        assert "ms" in row

    def test_counters_and_cache_rate_shown(self):
        text = live.render_watch(
            _snapshot(counters={"cache.hits": 9, "cache.misses": 1})
        )
        assert "cache.hits=9" in text
        assert "cache hit rate: 90%" in text


class TestLiveDisplay:
    def test_headless_emits_plain_lines(self):
        stream = io.StringIO()
        display = live.LiveDisplay(stream, headless=True)
        model = live.DashboardModel()
        model.worker("w").snapshot = _snapshot(ops={"op": [0.001]})
        display.update(model)
        display.update(model)
        output = stream.getvalue()
        assert "\x1b[" not in output
        assert output.count("[live]") == 2

    def test_ansi_mode_repaints_in_place(self):
        stream = io.StringIO()
        display = live.LiveDisplay(stream, headless=False)
        model = live.DashboardModel()
        model.worker("w")
        display.update(model)
        first = stream.getvalue()
        assert "\x1b[2K" in first  # erase-line per row
        assert "\x1b[" + str(first.count("\n")) + "F" not in first  # no cursor-up yet
        display.update(model)
        assert "F" in stream.getvalue()[len(first) :]  # second frame moves up

    def test_headless_close_renders_full_dashboard(self):
        stream = io.StringIO()
        display = live.LiveDisplay(stream, headless=True)
        model = live.DashboardModel()
        model.worker("w").status = "done"
        display.close(model)
        assert "TOTAL" in stream.getvalue()

    def test_is_headless_honours_env(self, monkeypatch):
        stream = io.StringIO()  # not a TTY
        assert live.is_headless(stream)
        monkeypatch.setenv("REPRO_LIVE_HEADLESS", "1")
        assert live.is_headless(None)
        monkeypatch.delenv("REPRO_LIVE_HEADLESS")
        monkeypatch.setenv("TERM", "dumb")
        assert live.is_headless(stream)


class TestFeedTailer:
    def test_missing_file_is_not_started_yet(self, tmp_path):
        tailer = live.FeedTailer(str(tmp_path / "absent.jsonl"))
        assert tailer.poll() == []
        assert tailer.latest_snapshot() is None

    def test_incremental_polling(self, tmp_path):
        path = tmp_path / "feed.jsonl"
        tailer = live.FeedTailer(str(path))
        path.write_text('{"type": "meta", "schema": 1}\n')
        assert [r["type"] for r in tailer.poll()] == ["meta"]
        with path.open("a") as handle:
            handle.write('{"type": "snapshot", "seq": 1, "worker": "E6"}\n')
        latest = tailer.latest_snapshot()
        assert latest["seq"] == 1
        assert tailer.poll() == []  # nothing new

    def test_partial_last_line_is_deferred(self, tmp_path):
        path = tmp_path / "feed.jsonl"
        path.write_text('{"type": "meta", "schema": 1}\n{"type": "snap')
        tailer = live.FeedTailer(str(path))
        assert [r["type"] for r in tailer.poll()] == ["meta"]
        with path.open("a") as handle:
            handle.write('shot", "seq": 2}\n')
        assert tailer.poll()[0]["seq"] == 2

    def test_tail_snapshots_updates_model_by_worker_label(self, tmp_path):
        path = tmp_path / "feed.jsonl"
        path.write_text(
            '{"type": "meta", "schema": 1}\n'
            '{"type": "snapshot", "seq": 1, "worker": "E6", "counters": {}}\n'
        )
        model = live.DashboardModel()
        model.worker("E6")
        live.tail_snapshots([live.FeedTailer(str(path))], model)
        view = model.workers["E6"]
        assert view.status == "running"
        assert view.snapshot["seq"] == 1
