"""Tests for ``repro.obs.attribution``: differential profiling.

The two properties the module exists for:

* an injected slowdown in one kernel ranks that kernel's span (or
  counter) as the top suspect;
* two clean back-to-back runs attribute to *nothing* -- no significant
  suspects, by construction.
"""

import pytest

from repro.bench.harness import Report, Timing
from repro.obs import attribution as attribution_mod
from repro.obs import metrics
from repro.obs.core import Span
from repro.obs.profile import profile_spans


def make_record(*experiments, git_sha="cafef00d"):
    """A RunRecord from (ident, seconds, counters) tuples."""
    pairs = []
    for ident, seconds, counters in experiments:
        report = Report(
            ident=ident,
            title=f"experiment {ident}",
            claim="claims scale",
            columns=("k", "v"),
        )
        report.holds = True
        report.counters = dict(counters)
        pairs.append((report, Timing([seconds] * 3)))
    return metrics.record_from_reports(pairs, git_sha=git_sha)


def experiment_trace(ident, *spans_spec):
    """One ``experiment.<ident>`` root with (name, elapsed) children."""
    children = [Span(name=name, elapsed=elapsed) for name, elapsed in spans_spec]
    total = sum(elapsed for _, elapsed in spans_spec)
    return [Span(name=f"experiment.{ident}", elapsed=total, children=children)]


class TestAttribute:
    def test_injected_span_regression_ranks_first(self):
        base = make_record(("E6", 0.020, {"resolution.steps": 100}))
        run = make_record(("E6", 0.060, {"resolution.steps": 100}))
        base_spans = experiment_trace(
            "E6", ("logic.resolve", 0.010), ("logic.reduce", 0.010)
        )
        run_spans = experiment_trace(
            "E6", ("logic.resolve", 0.050), ("logic.reduce", 0.010)
        )
        result = attribution_mod.attribute(
            run, base, run_spans=run_spans, base_spans=base_spans
        )
        (exp,) = result.experiments
        assert exp.status == "regressed"
        assert exp.top is not None
        assert exp.top.kind == "span"
        assert exp.top.name == "logic.resolve"
        assert exp.top.delta == pytest.approx(0.040)
        # the injected span explains the whole 40ms wall regression
        assert exp.top.share == pytest.approx(1.0)

    def test_clean_back_to_back_runs_attribute_to_nothing(self):
        base = make_record(("E6", 0.0200, {"resolution.steps": 100}))
        run = make_record(("E6", 0.0210, {"resolution.steps": 100}))
        spans = experiment_trace("E6", ("logic.resolve", 0.010))
        result = attribution_mod.attribute(
            run, base, run_spans=spans, base_spans=spans
        )
        assert not result.has_significant
        assert result.regressed() == []
        report = result.report()
        assert report.holds is True
        assert report.rows == []

    def test_recorded_spread_suppresses_noisy_seconds(self):
        # A 2x median jump, but the repeats scatter across the whole
        # range: the shared gate says noise, so attribution must too.
        base = metrics.record_from_reports(
            [(Report(ident="E6", title="t", claim="c", columns=("k",)),
              Timing([0.02, 0.30, 0.02]))],
            git_sha="a" * 8,
        )
        run = metrics.record_from_reports(
            [(Report(ident="E6", title="t", claim="c", columns=("k",)),
              Timing([0.04, 0.32, 0.04]))],
            git_sha="b" * 8,
        )
        result = attribution_mod.attribute(run, base)
        (exp,) = result.experiments
        assert exp.status == "neutral"

    def test_counter_move_attributes_without_traces(self):
        base = make_record(("E6", 0.020, {"resolution.steps": 100}))
        run = make_record(("E6", 0.020, {"resolution.steps": 150}))
        result = attribution_mod.attribute(run, base)
        (exp,) = result.experiments
        assert exp.status == "neutral"
        assert exp.top is not None
        assert exp.top.kind == "counter"
        assert exp.top.name == "resolution.steps"
        assert exp.top.delta == 50
        assert exp.top.share == pytest.approx(0.5)

    def test_counters_lead_when_seconds_did_not_regress(self):
        base = make_record(("E6", 0.020, {"resolution.steps": 100}))
        run = make_record(("E6", 0.020, {"resolution.steps": 150}))
        spans_base = experiment_trace("E6", ("logic.resolve", 0.010))
        spans_run = experiment_trace("E6", ("logic.resolve", 0.050))
        result = attribution_mod.attribute(
            run, base, run_spans=spans_run, base_spans=spans_base
        )
        (exp,) = result.experiments
        # counters moved, so spans were hunted too -- but with wall time
        # neutral the exact counter evidence outranks the span delta
        kinds = [s.kind for s in exp.suspects if s.significant]
        assert kinds[0] == "counter"
        assert "span" in kinds

    def test_unaligned_experiments_are_skipped(self):
        base = make_record(("E1", 0.020, {}))
        run = make_record(("E6", 0.060, {}))
        result = attribution_mod.attribute(run, base)
        assert result.experiments == []

    def test_whole_run_forest_diffs_as_pseudo_experiment(self):
        base_spans = [Span(name="session", elapsed=0.010,
                           children=[Span(name="logic.resolve", elapsed=0.008)])]
        run_spans = [Span(name="session", elapsed=0.050,
                          children=[Span(name="logic.resolve", elapsed=0.048)])]
        base = make_record(("E6", 0.020, {}))
        run = make_record(("E6", 0.020, {}))
        result = attribution_mod.attribute(
            run, base, run_spans=run_spans, base_spans=base_spans
        )
        whole = [e for e in result.experiments
                 if e.ident == attribution_mod.WHOLE_RUN]
        assert len(whole) == 1
        assert whole[0].status == "regressed"
        assert whole[0].top is not None
        assert whole[0].top.name == "logic.resolve"


class TestDiffProfiles:
    def test_quantile_shift_detected_when_totals_rebalance(self):
        # Baseline: 4 calls x 10ms.  Current: 1 call x 40ms.  Total self
        # time is identical (span delta neutral) but every remaining call
        # is 4x slower -- exactly what the quantile detector is for.
        base_profile = profile_spans(
            [Span(name="logic.resolve", elapsed=0.010) for _ in range(4)]
        )
        run_profile = profile_spans([Span(name="logic.resolve", elapsed=0.040)])
        suspects = attribution_mod.diff_profiles(run_profile, base_profile)
        quantiles = [s for s in suspects if s.kind == "quantile"]
        assert len(quantiles) == 1
        assert quantiles[0].significant
        assert quantiles[0].name.startswith("logic.resolve p")
        spans = [s for s in suspects if s.kind == "span"]
        assert all(not s.significant for s in spans)

    def test_below_floor_spans_never_produce_suspects(self):
        base_profile = profile_spans([Span(name="tiny", elapsed=0.0001)])
        run_profile = profile_spans([Span(name="tiny", elapsed=0.0004)])
        suspects = attribution_mod.diff_profiles(run_profile, base_profile)
        assert all(not s.significant for s in suspects)


class TestDiffCounters:
    def test_exact_deltas_and_relative_share(self):
        suspects = attribution_mod.diff_counters(
            {"a": 150, "b": 90, "c": 7}, {"a": 100, "b": 90, "c": 14}
        )
        by_name = {s.name: s for s in suspects}
        assert set(by_name) == {"a", "c"}
        assert by_name["a"].delta == 50
        assert by_name["a"].share == pytest.approx(0.5)
        assert by_name["c"].delta == -7
        assert by_name["c"].share == pytest.approx(-0.5)

    def test_added_and_removed_counters_are_structural_not_suspects(self):
        suspects = attribution_mod.diff_counters({"new": 5}, {"old": 5})
        assert suspects == []
