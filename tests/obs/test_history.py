"""Tests for ``repro.obs.history``: the append-only perf trajectory.

Covers store round-trips (atomic appends, validated loads), corruption
and schema-drift diagnostics, machine keys, trend extraction, the
changepoint detector (sustained departures flagged, blips and clean
noise never), and the sparkline/trend-report rendering.
"""

import json

import pytest

from repro.bench.harness import Report, Timing
from repro.errors import MetricsError, MetricsVersionError
from repro.obs import history as history_mod
from repro.obs import metrics


def make_record(ident="E6", seconds=0.02, counters=None, fits=None,
                git_sha="a" * 40, samples=None):
    report = Report(
        ident=ident,
        title=f"experiment {ident}",
        claim="claims scale",
        columns=("k", "v"),
    )
    report.holds = True
    report.counters = dict(counters or {"resolution.steps": 100})
    report.metrics = dict(fits or {})
    timing = Timing(samples if samples is not None else [seconds] * 3)
    return metrics.record_from_reports([(report, timing)], git_sha=git_sha)


def seed(tmp_path, specs):
    """Append one entry per (sha, seconds, counter) spec; return entries."""
    store = tmp_path / "hist"
    for day, (sha, seconds, counter) in enumerate(specs, 1):
        history_mod.append_history(
            make_record(seconds=seconds, counters={"resolution.steps": counter},
                        git_sha=sha),
            directory=store,
            recorded=f"2026-08-{day:02d}T00:00:00Z",
        )
    return history_mod.read_history(store)


class TestStore:
    def test_round_trip_preserves_entry_and_record(self, tmp_path):
        record = make_record(fits={"slope": 1.02})
        entry = history_mod.append_history(
            record, directory=tmp_path, label="full",
            recorded="2026-08-01T00:00:00Z",
        )
        loaded = history_mod.read_history(tmp_path)
        assert len(loaded) == 1
        got = loaded[0]
        assert got.schema_version == history_mod.HISTORY_SCHEMA_VERSION
        assert got.label == "full"
        assert got.recorded == "2026-08-01T00:00:00Z"
        assert got.git_sha == "a" * 40
        assert got.machine == entry.machine == history_mod.machine_key(
            record.fingerprint
        )
        exp = got.record.experiment("E6")
        assert exp is not None
        assert exp.counters == {"resolution.steps": 100}
        assert exp.fits == {"slope": 1.02}

    def test_appends_accumulate_oldest_first(self, tmp_path):
        entries = seed(tmp_path, [("a" * 40, 0.02, 100), ("b" * 40, 0.02, 100)])
        assert [e.git_sha[:1] for e in entries] == ["a", "b"]

    def test_file_argument_and_directory_argument_agree(self, tmp_path):
        history_mod.append_history(make_record(), directory=tmp_path)
        direct = tmp_path / history_mod.HISTORY_FILENAME
        assert history_mod.read_history(direct) == history_mod.read_history(tmp_path)

    def test_missing_store_names_the_seeding_commands(self, tmp_path):
        with pytest.raises(MetricsError, match="perf-history record"):
            history_mod.read_history(tmp_path / "nowhere")

    def test_corrupt_line_names_its_line_number(self, tmp_path):
        history_mod.append_history(make_record(), directory=tmp_path)
        store = tmp_path / history_mod.HISTORY_FILENAME
        with open(store, "a") as handle:
            handle.write("{not json\n")
        with pytest.raises(MetricsError, match="line 2"):
            history_mod.read_history(tmp_path)

    def test_newer_schema_version_raises_version_error(self, tmp_path):
        history_mod.append_history(make_record(), directory=tmp_path)
        store = tmp_path / history_mod.HISTORY_FILENAME
        line = json.loads(store.read_text().splitlines()[0])
        line["schema_version"] = history_mod.HISTORY_SCHEMA_VERSION + 1
        with open(store, "a") as handle:
            handle.write(json.dumps(line) + "\n")
        with pytest.raises(MetricsVersionError, match="newer"):
            history_mod.read_history(tmp_path)

    def test_non_object_line_is_rejected(self, tmp_path):
        store = tmp_path / history_mod.HISTORY_FILENAME
        store.parent.mkdir(parents=True, exist_ok=True)
        store.write_text("[1, 2, 3]\n")
        with pytest.raises(MetricsError, match="JSON object"):
            history_mod.read_history(tmp_path)

    def test_machine_key_ignores_platform_churn(self):
        record = make_record()
        fingerprint = dict(record.fingerprint)
        fingerprint["platform"] = "Linux-99.0.0-different-kernel"
        assert history_mod.machine_key(fingerprint) == history_mod.machine_key(
            record.fingerprint
        )
        other = dict(record.fingerprint, hostname="elsewhere")
        assert history_mod.machine_key(other) != history_mod.machine_key(
            record.fingerprint
        )


class TestTrend:
    def test_trend_orders_points_and_reads_metrics(self, tmp_path):
        entries = seed(
            tmp_path,
            [("a" * 40, 0.02, 100), ("b" * 40, 0.03, 110), ("c" * 40, 0.04, 120)],
        )
        trend = history_mod.experiment_trend(entries, "E6")
        assert trend.values() == [0.02, 0.03, 0.04]
        counter = history_mod.experiment_trend(
            entries, "E6", metric="counter:resolution.steps"
        )
        assert counter.values() == [100.0, 110.0, 120.0]

    def test_last_window_and_machine_filter(self, tmp_path):
        entries = seed(tmp_path, [("a" * 40, 0.02, 100), ("b" * 40, 0.04, 100)])
        windowed = history_mod.experiment_trend(entries, "E6", last=1)
        assert windowed.values() == [0.04]
        elsewhere = history_mod.experiment_trend(entries, "E6", machine="ffffffffffff")
        assert elsewhere.values() == []

    def test_available_metrics_lists_counters_and_fits(self, tmp_path):
        store = tmp_path / "hist"
        history_mod.append_history(
            make_record(counters={"c1": 1}, fits={"slope": 2.0}), directory=store
        )
        entries = history_mod.read_history(store)
        assert history_mod.available_metrics(entries, "E6") == [
            "counter:c1",
            "fit:slope",
            "seconds",
        ]


class TestChangepoint:
    def test_sustained_step_is_flagged_at_the_first_off_band_commit(self, tmp_path):
        entries = seed(
            tmp_path,
            [
                ("a" * 40, 0.020, 100),
                ("b" * 40, 0.021, 100),
                ("c" * 40, 0.050, 100),
                ("d" * 40, 0.051, 100),
            ],
        )
        trend = history_mod.experiment_trend(entries, "E6")
        changepoint = history_mod.detect_changepoint(trend)
        assert changepoint is not None
        assert changepoint.status == "regressed"
        assert changepoint.point.git_sha == "c" * 40
        assert changepoint.before == pytest.approx(0.0205)
        assert changepoint.after == pytest.approx(0.0505)

    def test_counter_step_is_flagged_exactly(self, tmp_path):
        entries = seed(
            tmp_path,
            [("a" * 40, 0.02, 100), ("b" * 40, 0.02, 100), ("c" * 40, 0.02, 140)],
        )
        trend = history_mod.experiment_trend(
            entries, "E6", metric="counter:resolution.steps"
        )
        changepoint = history_mod.detect_changepoint(trend)
        assert changepoint is not None
        assert changepoint.point.git_sha == "c" * 40
        assert changepoint.delta == 40

    def test_single_blip_is_never_a_changepoint(self, tmp_path):
        entries = seed(
            tmp_path,
            [
                ("a" * 40, 0.020, 100),
                ("b" * 40, 0.090, 100),  # one bad sample ...
                ("c" * 40, 0.021, 100),  # ... back in band
            ],
        )
        trend = history_mod.experiment_trend(entries, "E6")
        assert history_mod.detect_changepoint(trend) is None

    def test_in_band_noise_is_never_a_changepoint(self, tmp_path):
        entries = seed(
            tmp_path,
            [("a" * 40, 0.020, 100), ("b" * 40, 0.022, 100), ("c" * 40, 0.019, 100)],
        )
        trend = history_mod.experiment_trend(entries, "E6")
        assert history_mod.detect_changepoint(trend) is None

    def test_recorded_spread_widens_the_band(self, tmp_path):
        # A 2x jump would normally regress, but huge recorded repeat
        # scatter means the gate cannot call it significant.
        store = tmp_path / "hist"
        history_mod.append_history(
            make_record(samples=[0.02, 0.30, 0.02], git_sha="a" * 40),
            directory=store,
        )
        history_mod.append_history(
            make_record(samples=[0.04, 0.32, 0.04], git_sha="b" * 40),
            directory=store,
        )
        entries = history_mod.read_history(store)
        trend = history_mod.experiment_trend(entries, "E6")
        assert history_mod.detect_changepoint(trend) is None


class TestRendering:
    def test_sparkline_shape(self):
        assert history_mod.sparkline([1.0, 1.0, 8.0]) == "▁▁█"
        assert history_mod.sparkline([2.0, None, 2.0]) == "▄·▄"
        assert history_mod.sparkline([]) == ""

    def test_trend_report_flags_drift_and_fails_verdict(self, tmp_path):
        entries = seed(
            tmp_path,
            [
                ("a" * 40, 0.020, 100),
                ("b" * 40, 0.021, 100),
                ("c" * 40, 0.050, 100),
                ("d" * 40, 0.051, 100),
            ],
        )
        report = history_mod.trend_report(entries)
        assert report.holds is False
        rendered = report.render()
        assert "E6" in rendered
        assert "regressed at ccccccc" in rendered

    def test_trend_report_on_stable_history_holds(self, tmp_path):
        entries = seed(tmp_path, [("a" * 40, 0.02, 100), ("b" * 40, 0.02, 100)])
        report = history_mod.trend_report(entries)
        assert report.holds is True
        assert "drifting" in report.observed
