"""Fingerprint canonicalisation and collision resistance.

The memo-cache is only sound if (a) equal clause-set *contents* always
map to equal fingerprints regardless of presentation, and (b) unequal
contents essentially never collide -- in particular not for sets that
share a signature bitmask (same letters, different clause shapes),
which is exactly the regime the digest exists to separate."""

import random

from repro.cache.fingerprint import clause_set_fingerprint, fingerprint_of_clauses
from repro.logic import Vocabulary
from repro.logic.clauses import ClauseSet


def test_presentation_invariance():
    base = [(1, -2, 3), (-1, 2), (4,)]
    reordered = [(4,), (-1, 2), (3, 1, -2)]  # clause order and literal order
    assert fingerprint_of_clauses(base) == fingerprint_of_clauses(reordered)


def test_components_are_meaningful():
    count, mask, digest = fingerprint_of_clauses([(1, -3), (2,)])
    assert count == 2
    assert mask == 0b111  # letters 1, 2, 3 as bits 0..2
    assert len(digest) == 16


def test_duplicate_clauses_not_collapsed_by_fingerprint():
    # Canonicalisation sorts but deliberately keeps duplicates: the
    # function hashes exactly what it is given, and ClauseSet dedupes
    # upstream.  [c, c] and [c] differ in clause_count, hence in key.
    once = fingerprint_of_clauses([(1, 2)])
    twice = fingerprint_of_clauses([(1, 2), (2, 1)])
    assert once[0] == 1 and twice[0] == 2
    assert once != twice


def test_empty_set_and_empty_clause_are_distinct():
    nothing = fingerprint_of_clauses([])
    box = fingerprint_of_clauses([()])  # the empty clause (unsatisfiable)
    assert nothing != box
    assert nothing[0] == 0 and box[0] == 1


def test_separator_prevents_clause_boundary_aliasing():
    # Same literal multiset, different grouping: {{1,2},{3}} vs {{1},{2,3}}.
    split_a = fingerprint_of_clauses([(1, 2), (3,)])
    split_b = fingerprint_of_clauses([(1,), (2, 3)])
    assert split_a[1] == split_b[1]  # same letters -> same mask
    assert split_a[2] != split_b[2]  # digest separates the shapes


def test_equal_bitmask_sets_do_not_collide():
    """Randomised sweep over clause sets built from a FIXED letter pool:
    every set shares the signature mask, so the digest alone must keep
    distinct contents apart."""
    rng = random.Random(0x51ED)
    letters = [1, 2, 3, 4, 5, 6]
    seen: dict[bytes, tuple] = {}
    masks = set()
    for _ in range(500):
        clause_count = rng.randint(1, 5)
        clauses = []
        for _ in range(clause_count):
            width = rng.randint(1, 4)
            chosen = rng.sample(letters, width)
            clauses.append(tuple(
                idx if rng.random() < 0.5 else -idx for idx in chosen
            ))
        # Pad so every letter occurs somewhere: forces identical masks.
        used = {abs(lit) for clause in clauses for lit in clause}
        missing = [idx for idx in letters if idx not in used]
        if missing:
            clauses.append(tuple(missing))
        canonical = tuple(sorted(tuple(sorted(c)) for c in clauses))
        count, mask, digest = fingerprint_of_clauses(clauses)
        masks.add(mask)
        if digest in seen:
            assert seen[digest] == canonical, (
                f"digest collision: {seen[digest]} vs {canonical}"
            )
        seen[digest] = canonical
    assert masks == {0b111111}  # the sweep really did pin the bitmask


def test_clause_set_fingerprint_matches_and_is_cached_on_instance():
    vocab = Vocabulary.standard(4)
    built = ClauseSet.from_strs(vocab, ["A1 | ~A2", "A3"])
    rebuilt = ClauseSet.from_strs(vocab, ["A3", "~A2 | A1"])
    assert built.fingerprint == rebuilt.fingerprint
    assert built.fingerprint == clause_set_fingerprint(built)
    assert built.fingerprint is built.fingerprint  # lazily computed once
