"""Fixtures for the kernel memo-cache tests: every test starts and ends
with the cache disabled and empty, and obs instrumentation off, so the
process-wide flags never leak between tests (or into the rest of the
suite, which asserts kernel counter totals with the cache off)."""

import pytest

from repro.cache import core as cache
from repro.obs import core as obs


@pytest.fixture(autouse=True)
def clean_cache():
    cache.disable_cache()
    cache.clear_caches()
    cache._CACHES.clear()  # drop stores so per-test capacities can't leak
    cache._CAPACITY = cache.DEFAULT_CAPACITY
    obs.disable()
    obs.reset()
    yield
    cache.disable_cache()
    cache.clear_caches()
    cache._CACHES.clear()  # drop stores so per-test capacities can't leak
    cache._CAPACITY = cache.DEFAULT_CAPACITY
    obs.disable()
    obs.reset()
