"""The cache-transparency guarantee, tested differentially.

``enable_cache()`` must never change what any kernel returns: for every
memoised kernel, the value computed with the cache ON (both the cold
first call that populates the store and the warm second call served
from it) must be bit-identical to the cache-OFF reference.  Randomised
over 200+ clause sets, plus aliasing regressions (equal fingerprints
with different vocabularies or different extra arguments must not share
entries)."""

import random

from repro.blu.clausal_genmask import clausal_genmask
from repro.blu.clausal_mask import clausal_mask
from repro.cache import core as cache
from repro.logic.clauses import ClauseSet, make_literal
from repro.logic.implicates import prime_implicates
from repro.logic.propositions import Vocabulary
from repro.logic.resolution import rclosure, resolution_closure
from repro.logic.sat import count_models_exact


def _random_clause_set(rng, vocab, clause_count, max_width):
    n = len(vocab)
    clauses = []
    for _ in range(clause_count):
        width = rng.randint(1, min(max_width, n))
        letters = rng.sample(range(n), width)
        clauses.append(
            frozenset(make_literal(i, rng.random() < 0.5) for i in letters)
        )
    return ClauseSet(vocab, clauses)


def _kernel_calls(rng, cs):
    """One (name, thunk) per memoised kernel, arguments fixed per case."""
    indices = sorted(rng.sample(range(len(cs.vocabulary)),
                                rng.randint(1, min(3, len(cs.vocabulary)))))
    simplify = rng.random() < 0.5
    return [
        ("logic.reduce", lambda: cs.reduce()),
        ("logic.rclosure", lambda: rclosure(cs, indices)),
        ("logic.resolution_closure", lambda: resolution_closure(cs)),
        ("logic.count_models_exact", lambda: count_models_exact(cs)),
        ("logic.prime_implicates", lambda: prime_implicates(cs)),
        ("blu.c.mask", lambda: clausal_mask(cs, indices, simplify=simplify)),
        ("blu.c.genmask", lambda: clausal_genmask(cs)),
    ]


def test_cache_never_changes_kernel_output_randomized():
    rng = random.Random(0xCACE)
    cases = 0
    for _ in range(30):
        vocab = Vocabulary.standard(rng.randint(2, 10))
        cs = _random_clause_set(rng, vocab, rng.randint(1, 8), 3)
        for name, call in _kernel_calls(rng, cs):
            cache.disable_cache()
            reference = call()
            cache.enable_cache()
            cold = call()
            warm = call()
            assert cold == reference, f"{name} cold != uncached on {cs}"
            assert warm == reference, f"{name} warm != uncached on {cs}"
            assert type(cold) is type(reference), name
            cases += 1
    assert cases >= 200  # 30 clause sets x 7 kernels
    # and the warm calls really were served from the store
    stats = cache.cache_stats()
    assert sum(s["hits"] for s in stats.values()) >= 30 * 7


def test_hits_accumulate_per_kernel():
    vocab = Vocabulary.standard(4)
    cs = ClauseSet.from_strs(vocab, ["A1 | A2", "~A1 | A3", "A4"])
    cache.enable_cache()
    for _ in range(3):
        count_models_exact(cs)
    stats = cache.cache_stats()["logic.count_models_exact"]
    assert stats["misses"] == 1
    assert stats["hits"] == 2
    assert stats["entries"] == 1


def test_equal_fingerprints_across_vocabularies_do_not_alias():
    """Keys pair the fingerprint with the Vocabulary object, so the same
    clause shape over different letter names must stay separate."""
    vocab_a = Vocabulary(("P", "Q"))
    vocab_b = Vocabulary(("X", "Y"))
    cs_a = ClauseSet.from_strs(vocab_a, ["P | Q"])
    cs_b = ClauseSet.from_strs(vocab_b, ["X | Y"])
    assert cs_a.fingerprint == cs_b.fingerprint
    cache.enable_cache()
    closed_a = resolution_closure(cs_a)
    closed_b = resolution_closure(cs_b)
    assert closed_a.vocabulary is vocab_a
    assert closed_b.vocabulary is vocab_b
    stats = cache.cache_stats()["logic.resolution_closure"]
    assert stats["misses"] == 2 and stats["hits"] == 0


def test_extra_arguments_are_part_of_the_key():
    vocab = Vocabulary.standard(3)
    cs = ClauseSet.from_strs(vocab, ["A1 | A2", "~A2 | A3"])
    cache.enable_cache()
    masked_simplified = clausal_mask(cs, [1], simplify=True)
    masked_raw = clausal_mask(cs, [1], simplify=False)
    assert clausal_mask(cs, [1], simplify=True) == masked_simplified
    assert clausal_mask(cs, [1], simplify=False) == masked_raw
    stats = cache.cache_stats()["blu.c.mask"]
    assert stats["misses"] == 2 and stats["hits"] == 2
    # rclosure keyed on the pivot set, too
    assert rclosure(cs, [1]) == rclosure(cs, [1])
    assert cache.cache_stats()["logic.rclosure"]["misses"] == 1


def test_capacity_zero_cache_still_transparent():
    rng = random.Random(7)
    cache.enable_cache(capacity=0)
    for _ in range(5):
        vocab = Vocabulary.standard(rng.randint(2, 6))
        cs = _random_clause_set(rng, vocab, rng.randint(1, 5), 3)
        cache.disable_cache()
        reference = count_models_exact(cs)
        cache.enable_cache()
        assert count_models_exact(cs) == reference
        assert count_models_exact(cs) == reference
    stats = cache.cache_stats()["logic.count_models_exact"]
    assert stats["hits"] == 0 and stats["entries"] == 0
