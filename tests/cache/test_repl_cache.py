"""The shell's ``:cache`` command: enable/disable/clear/stats and the
error paths, driving real kernel work through the HLU pipeline so the
stats table shows genuine hits."""

from repro.cache import core as cache
from repro.cli import Shell


def test_cache_on_off_clear_messages():
    shell = Shell(5)
    assert shell.execute(":cache on") == (
        f"kernel cache on (capacity {cache.DEFAULT_CAPACITY} per kernel)"
    )
    assert cache.cache_enabled()
    assert shell.execute(":cache off") == (
        "kernel cache off (entries kept; :cache clear to drop them)"
    )
    assert not cache.cache_enabled()
    assert shell.execute(":cache clear") == "kernel cache cleared"


def test_cache_on_with_capacity():
    shell = Shell(5)
    assert shell.execute(":cache on 128").endswith("(capacity 128 per kernel)")
    assert cache.cache_capacity() == 128


def test_cache_stats_empty_then_populated():
    shell = Shell(5)
    assert shell.execute(":cache stats") == "(kernel cache off; no lookups recorded)"
    shell.execute(":cache on")
    shell.execute("(insert {A1 | A2})")
    shell.execute("(insert {A1 | A2})")  # second pass re-derives -> hits
    table = shell.execute(":cache stats")
    assert "kernel memo-cache (on)" in table
    assert "logic.reduce" in table
    for column in cache.STAT_KEYS:
        assert column in table


def test_cache_default_mode_is_stats():
    shell = Shell(5)
    assert shell.execute(":cache") == "(kernel cache off; no lookups recorded)"


def test_cache_error_paths():
    shell = Shell(5)
    assert shell.execute(":cache on lots").startswith("error:")
    assert shell.execute(":cache on -1") == "error: cache capacity must be >= 0"
    assert shell.execute(":cache sideways").startswith("error:")
    assert not cache.cache_enabled()


def test_help_mentions_cache():
    assert ":cache" in Shell(5).execute(":help")
