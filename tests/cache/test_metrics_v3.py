"""Schema v3 of the BENCH run record: the optional ``cache`` block.

v3 adds one top-level field next to ``fingerprint``; everything else is
v2.  These tests pin the serialised shape, the round trip, the
validation of malformed blocks, and -- the compatibility promise -- that
v2 documents (no ``cache`` key, ``schema_version: 2``) still load and
still compare against v3 records."""

import json

import pytest

from repro.bench.harness import Report, Timing
from repro.errors import MetricsError
from repro.obs import baseline, metrics

CACHE_BLOCK = {
    "enabled": True,
    "kernels": {
        "logic.reduce": {
            "hits": 7, "misses": 3, "evictions": 1,
            "entries": 2, "capacity": 4096,
        },
    },
}


def make_report(ident="E1"):
    report = Report(
        ident=ident,
        title=f"experiment {ident}",
        claim="claims scale",
        columns=("size", "value"),
    )
    report.holds = True
    report.counters = {"blu.c.assert.calls": 3}
    report.metrics = {"loglog_slope": 1.02}
    report.memory = None
    return report


def make_record(cache=None):
    return metrics.record_from_reports(
        [(make_report(), Timing([0.25, 0.2, 0.3]))],
        git_sha="deadbeef",
        cache=cache,
    )


class TestCacheBlockRoundTrip:
    def test_default_record_has_null_cache(self):
        record = make_record()
        assert record.cache is None
        data = metrics.run_record_to_json(record)
        assert data["schema_version"] == metrics.SCHEMA_VERSION
        assert data["cache"] is None

    def test_cache_block_serialises_sorted_and_int_coerced(self):
        record = make_record(cache={
            "enabled": True,
            "kernels": {
                "z.kernel": {"hits": 1, "misses": 0, "evictions": 0,
                             "entries": 1, "capacity": 16},
                "a.kernel": {"hits": True, "misses": 2, "evictions": 0,
                             "entries": 1, "capacity": 16},
            },
        })
        data = metrics.run_record_to_json(record)
        assert list(data["cache"]["kernels"]) == ["a.kernel", "z.kernel"]
        hits = data["cache"]["kernels"]["a.kernel"]["hits"]
        assert hits == 1 and hits is not True

    def test_round_trip_preserves_cache_block(self):
        record = make_record(cache=CACHE_BLOCK)
        restored = metrics.run_record_from_json(
            json.loads(json.dumps(metrics.run_record_to_json(record)))
        )
        assert restored.cache == CACHE_BLOCK
        assert restored.schema_version == metrics.SCHEMA_VERSION

    def test_v2_document_without_cache_key_still_loads(self):
        data = metrics.run_record_to_json(make_record(cache=CACHE_BLOCK))
        data["schema_version"] = 2
        del data["cache"]
        restored = metrics.run_record_from_json(data)
        assert restored.schema_version == 2
        assert restored.cache is None

    def test_v3_and_v2_records_compare(self):
        run = make_record(cache=CACHE_BLOCK)
        base_data = metrics.run_record_to_json(make_record())
        base_data["schema_version"] = 2
        del base_data["cache"]
        base = metrics.run_record_from_json(base_data)
        comparison = baseline.compare(run, base)
        assert comparison.regressions() == []


class TestCacheBlockValidation:
    def bad(self, cache):
        data = metrics.run_record_to_json(make_record())
        data["cache"] = cache
        return data

    def test_non_mapping_rejected(self):
        with pytest.raises(MetricsError, match="cache"):
            metrics.run_record_from_json(self.bad([1, 2]))

    def test_enabled_must_be_bool(self):
        with pytest.raises(MetricsError, match="enabled"):
            metrics.run_record_from_json(
                self.bad({"enabled": 1, "kernels": {}})
            )

    def test_kernels_must_be_mapping_of_int_stats(self):
        with pytest.raises(MetricsError, match="kernels"):
            metrics.run_record_from_json(
                self.bad({"enabled": True, "kernels": [1]})
            )
        with pytest.raises(MetricsError):
            metrics.run_record_from_json(
                self.bad({"enabled": True,
                          "kernels": {"k": {"hits": "three"}}})
            )

    def test_null_cache_accepted(self):
        restored = metrics.run_record_from_json(self.bad(None))
        assert restored.cache is None
