"""End-to-end through ``benchmarks/run_experiments.py`` with the cache
and the process-pool on: ``--cache --jobs 2`` must exit 0, write a
schema-v3 record whose cache block carries merged per-worker stats, and
emit a merged trace that still passes the exporter schema check."""

import sys
from pathlib import Path

import pytest

from repro.obs import metrics
from repro.obs.export import counters_from_jsonl, spans_from_jsonl, validate_jsonl

BENCH_DIR = Path(__file__).resolve().parent.parent.parent / "benchmarks"


@pytest.fixture()
def run_main(monkeypatch):
    monkeypatch.syspath_prepend(str(BENCH_DIR))
    sys.modules.pop("run_experiments", None)
    import run_experiments

    yield run_experiments.main
    sys.modules.pop("run_experiments", None)


def test_serial_cache_run_records_stats(run_main, tmp_path, capsys):
    out = tmp_path / "BENCH_cached.json"
    code = run_main(["E6", "--cache", "--bench-out", str(out)])
    capsys.readouterr()
    assert code == 0
    record = metrics.read_run_record(out)
    assert record.schema_version == metrics.SCHEMA_VERSION
    assert record.cache is not None
    assert record.cache["enabled"] is True
    stats = record.cache["kernels"]
    assert stats, "cached run recorded no kernel lookups"
    assert all(set(v) >= {"hits", "misses"} for v in stats.values())


def test_uncached_run_records_disabled_cache_block(run_main, tmp_path, capsys):
    out = tmp_path / "BENCH_plain.json"
    code = run_main(["E6", "--bench-out", str(out)])
    capsys.readouterr()
    assert code == 0
    record = metrics.read_run_record(out)
    assert record.cache is not None
    assert record.cache["enabled"] is False
    assert record.cache["kernels"] == {}


def test_cache_capacity_requires_cache_flag(run_main, capsys):
    with pytest.raises(SystemExit):
        run_main(["E6", "--cache-capacity", "64"])
    capsys.readouterr()


@pytest.mark.smoke
def test_jobs_two_merges_traces_and_cache_stats(run_main, tmp_path, capsys):
    out = tmp_path / "BENCH_par.json"
    trace = tmp_path / "trace.jsonl"
    code = run_main([
        "E6", "E7", "--cache", "--jobs", "2",
        "--bench-out", str(out), "--trace-out", str(trace),
    ])
    stdout = capsys.readouterr().out
    assert code == 0
    assert "E6" in stdout and "E7" in stdout

    record = metrics.read_run_record(out)
    assert record.idents == ["E6", "E7"]
    assert record.cache is not None and record.cache["enabled"] is True
    assert record.cache["kernels"], "merged cache stats are empty"
    # per-experiment payloads survive the pool round trip
    for ident in ("E6", "E7"):
        exp = record.experiment(ident)
        assert exp.seconds["repeats"] >= 1
        assert exp.counters

    text = trace.read_text()
    assert validate_jsonl(text) == []
    roots = spans_from_jsonl(text)
    names = {root.name for root in roots}
    assert {"experiment.E6", "experiment.E7"} <= names
    counters = counters_from_jsonl(text)
    assert any(key.startswith("cache.") for key in counters.counts)
