"""Unit tests for the LRU kernel store and the module-level switchboard:
boundary capacities (0 and 1), eviction order, tally bookkeeping, the
obs counter mirror, and per-worker stats merging."""

import pytest

from repro.cache import core as cache
from repro.cache.core import MISS, STAT_KEYS, KernelCache
from repro.obs import core as obs


class TestKernelCacheLRU:
    def test_miss_then_hit(self):
        store = KernelCache("k", capacity=4)
        assert store.lookup("a") is MISS
        store.store("a", 1)
        assert store.lookup("a") == 1
        assert store.stats() == {
            "hits": 1, "misses": 1, "evictions": 0, "entries": 1, "capacity": 4,
        }

    def test_stats_keys_match_declared_order(self):
        assert tuple(KernelCache("k").stats()) == STAT_KEYS

    def test_falsy_values_are_cacheable(self):
        store = KernelCache("k", capacity=4)
        store.store("zero", 0)
        store.store("empty", frozenset())
        assert store.lookup("zero") == 0
        assert store.lookup("zero") is not MISS
        assert store.lookup("empty") == frozenset()
        assert store.hits == 3

    def test_eviction_is_least_recently_used(self):
        store = KernelCache("k", capacity=2)
        store.store("a", 1)
        store.store("b", 2)
        assert store.lookup("a") == 1  # refreshes a; b is now LRU
        store.store("c", 3)
        assert store.lookup("b") is MISS
        assert store.lookup("a") == 1
        assert store.lookup("c") == 3
        assert store.evictions == 1

    def test_restore_refreshes_lru_position(self):
        store = KernelCache("k", capacity=2)
        store.store("a", 1)
        store.store("b", 2)
        store.store("a", 10)  # re-store refreshes, must not evict
        store.store("c", 3)
        assert store.lookup("a") == 10
        assert store.lookup("b") is MISS
        assert len(store) == 2

    def test_capacity_one_boundary(self):
        store = KernelCache("k", capacity=1)
        store.store("a", 1)
        store.store("b", 2)
        assert len(store) == 1
        assert store.lookup("a") is MISS
        assert store.lookup("b") == 2
        assert store.evictions == 1

    def test_capacity_zero_is_counting_pass_through(self):
        store = KernelCache("k", capacity=0)
        store.store("a", 1)
        assert len(store) == 0
        assert store.lookup("a") is MISS
        assert store.stats() == {
            "hits": 0, "misses": 1, "evictions": 0, "entries": 0, "capacity": 0,
        }

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            KernelCache("k", capacity=-1)
        with pytest.raises(ValueError, match=">= 0"):
            KernelCache("k").resize(-2)

    def test_resize_down_evicts_lru_first(self):
        store = KernelCache("k", capacity=4)
        for name in "abcd":
            store.store(name, name.upper())
        store.lookup("a")  # a becomes most recent
        store.resize(2)
        assert len(store) == 2
        assert store.lookup("a") == "A"
        assert store.lookup("d") == "D"
        assert store.lookup("b") is MISS
        assert store.evictions == 2

    def test_clear_zeroes_everything(self):
        store = KernelCache("k", capacity=4)
        store.store("a", 1)
        store.lookup("a")
        store.lookup("missing")
        store.clear()
        assert len(store) == 0
        assert store.stats() == {
            "hits": 0, "misses": 0, "evictions": 0, "entries": 0, "capacity": 4,
        }


class TestModuleSwitchboard:
    def test_disabled_lookup_is_miss_and_store_is_noop(self):
        cache.store("logic.reduce", "key", "value")
        assert cache.lookup("logic.reduce", "key") is MISS
        assert cache.cache_stats() == {}

    def test_enable_roundtrip(self):
        cache.enable_cache()
        assert cache.cache_enabled()
        cache.store("logic.reduce", "key", "value")
        assert cache.lookup("logic.reduce", "key") == "value"
        cache.disable_cache()
        assert not cache.cache_enabled()
        # entries survive disable; re-enable sees them again
        cache.enable_cache()
        assert cache.lookup("logic.reduce", "key") == "value"

    def test_enable_with_capacity_resizes_existing_stores(self):
        cache.enable_cache(capacity=8)
        for i in range(8):
            cache.store("k", i, i)
        cache.enable_cache(capacity=2)
        assert cache.cache_capacity() == 2
        stats = {}
        cache.store("k", "probe", 1)  # force the store to exist in stats
        cache.lookup("k", "probe")
        stats = cache.cache_stats()["k"]
        assert stats["capacity"] == 2
        assert stats["entries"] <= 2

    def test_enable_rejects_negative_capacity(self):
        with pytest.raises(ValueError, match=">= 0"):
            cache.enable_cache(capacity=-1)

    def test_stats_only_lists_active_kernels_sorted(self):
        cache.enable_cache()
        cache.lookup("z.kernel", "k")
        cache.lookup("a.kernel", "k")
        cache.store("untouched", "k", 1)  # stored but never looked up
        assert list(cache.cache_stats()) == ["a.kernel", "z.kernel"]

    def test_obs_counters_mirror_outcomes(self):
        cache.enable_cache(capacity=1)
        obs.enable()
        cache.lookup("logic.reduce", "a")          # miss
        cache.store("logic.reduce", "a", 1)
        cache.lookup("logic.reduce", "a")          # hit
        cache.store("logic.reduce", "b", 2)        # evicts a
        counters = obs.counters()
        assert counters.get("cache.logic.reduce.misses") == 1
        assert counters.get("cache.logic.reduce.hits") == 1
        assert counters.get("cache.logic.reduce.evictions") == 1


class TestMergeStats:
    def test_sums_tallies_and_maxes_capacity(self):
        merged = cache.merge_stats([
            {"k": {"hits": 1, "misses": 2, "evictions": 0,
                   "entries": 3, "capacity": 64}},
            {"k": {"hits": 4, "misses": 1, "evictions": 2,
                   "entries": 1, "capacity": 128},
             "other": {"hits": 0, "misses": 5, "evictions": 0,
                       "entries": 5, "capacity": 64}},
        ])
        assert merged == {
            "k": {"hits": 5, "misses": 3, "evictions": 2,
                  "entries": 4, "capacity": 128},
            "other": {"hits": 0, "misses": 5, "evictions": 0,
                      "entries": 5, "capacity": 64},
        }

    def test_kernels_sorted_and_empty_input_ok(self):
        assert cache.merge_stats([]) == {}
        merged = cache.merge_stats([{"z": {"hits": 1}}, {"a": {"misses": 1}}])
        assert list(merged) == ["a", "z"]
