"""Fast experiments from the E-suite, run inside the unit-test suite.

The full suite (timing sweeps included) lives under ``benchmarks/``;
these are the sub-second experiments whose verdicts are pure correctness
claims, kept in ``tests/`` so a plain ``pytest tests/`` already confirms
the paper's worked examples and theorems reproduce.
"""

import pytest

from repro.bench import experiments


FAST_EXPERIMENTS = [
    experiments.e06_example_315,
    experiments.e07_example_325,
    experiments.e08_inset_example,
    experiments.e09_congruence_theorem,
    experiments.e10_emulation,
    experiments.e12_hlu_equivalence,
    experiments.e13_relational_grounding,
    experiments.e15_minimal_change,
    experiments.e17_template_coverage,
    experiments.a05_incremental_updates,
]


@pytest.mark.parametrize(
    "experiment", FAST_EXPERIMENTS, ids=lambda e: e.__name__
)
def test_experiment_reproduces_claim(experiment):
    report = experiment()
    assert report.holds, report.render()


def test_reports_render_cleanly():
    for experiment in FAST_EXPERIMENTS[:3]:
        text = experiment().render()
        assert text.startswith("== E")
        assert "claim" in text
